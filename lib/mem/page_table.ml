module Entry = struct
  type t = int

  let absent = 0
  let present_bit = 1
  let writable_bit = 2
  let cow_bit = 4
  let dirty_bit = 8
  let accessed_bit = 16
  let flag_bits = 5

  let make ~frame ~writable ~cow ~dirty ~accessed =
    (frame lsl flag_bits)
    lor present_bit
    lor (if writable then writable_bit else 0)
    lor (if cow then cow_bit else 0)
    lor (if dirty then dirty_bit else 0)
    lor if accessed then accessed_bit else 0

  let present e = e land present_bit <> 0
  let frame e = e lsr flag_bits
  let writable e = e land writable_bit <> 0
  let cow e = e land cow_bit <> 0
  let dirty e = e land dirty_bit <> 0
  let accessed e = e land accessed_bit <> 0

  let with_flags ?writable:w ?cow:c ?dirty:d ?accessed:a e =
    let put bit value e =
      match value with
      | None -> e
      | Some true -> e lor bit
      | Some false -> e land lnot bit
    in
    e |> put writable_bit w |> put cow_bit c |> put dirty_bit d
    |> put accessed_bit a
end

type leaf = { mutable rc : int; entries : int array }

type t = {
  frames : Frame.t;
  dirs : leaf option array;
  mutable released : bool;
}

let entries = Mconfig.entries_per_table
let root_size = 512
let max_vpn = root_size * entries

let create frames =
  { frames; dirs = Array.make root_size None; released = false }

let check_alive t = if t.released then invalid_arg "Page_table: use after release"

let clone_shallow t =
  check_alive t;
  Array.iter
    (function Some leaf -> leaf.rc <- leaf.rc + 1 | None -> ())
    t.dirs;
  { frames = t.frames; dirs = Array.copy t.dirs; released = false }

let split vpn =
  if vpn < 0 || vpn >= max_vpn then invalid_arg "Page_table: vpn out of range";
  (vpn / entries, vpn mod entries)

let get t ~vpn =
  check_alive t;
  let dir, idx = split vpn in
  match t.dirs.(dir) with None -> Entry.absent | Some leaf -> leaf.entries.(idx)

(* A leaf this table is about to write through must be exclusively owned:
   copy it if shared, taking a frame reference for every present entry the
   copy now names. *)
let private_leaf t dir =
  match t.dirs.(dir) with
  | None ->
      let leaf = { rc = 1; entries = Array.make entries Entry.absent } in
      t.dirs.(dir) <- Some leaf;
      leaf
  | Some leaf when leaf.rc = 1 -> leaf
  | Some shared ->
      shared.rc <- shared.rc - 1;
      let copy = { rc = 1; entries = Array.copy shared.entries } in
      Array.iter
        (fun e -> if Entry.present e then Frame.incref t.frames (Entry.frame e))
        copy.entries;
      t.dirs.(dir) <- Some copy;
      copy

let set t ~vpn entry =
  check_alive t;
  let dir, idx = split vpn in
  let leaf = private_leaf t dir in
  let old = leaf.entries.(idx) in
  leaf.entries.(idx) <- entry;
  (* Same-frame updates (flag changes) keep the existing reference;
     otherwise the old mapping's reference is dropped and the new entry's
     reference was transferred in by the caller. *)
  let same_frame =
    Entry.present old && Entry.present entry
    && Entry.frame old = Entry.frame entry
  in
  if (not same_frame) && Entry.present old then
    Frame.decref t.frames (Entry.frame old)

let in_place_map t f =
  check_alive t;
  Array.iter
    (function
      | None -> ()
      | Some leaf ->
          for i = 0 to entries - 1 do
            let e = leaf.entries.(i) in
            if Entry.present e then leaf.entries.(i) <- f e
          done)
    t.dirs

let mark_all_cow_clean t =
  in_place_map t (fun e ->
      Entry.with_flags ~writable:false ~cow:true ~dirty:false e)

let clear_dirty_all t = in_place_map t (fun e -> Entry.with_flags ~dirty:false e)

let fold_present t ~init ~f =
  check_alive t;
  let acc = ref init in
  Array.iteri
    (fun dir leaf ->
      match leaf with
      | None -> ()
      | Some leaf ->
          for i = 0 to entries - 1 do
            let e = leaf.entries.(i) in
            if Entry.present e then acc := f !acc ~vpn:((dir * entries) + i) e
          done)
    t.dirs;
  !acc

(* Walk the pages [t] maps through a different frame than [parent] (or
   maps where [parent] has nothing) — the delta layer of a stacked
   snapshot. Leaves physically shared with the parent are skipped
   outright: structural sharing guarantees their entries are identical,
   which is what keeps the walk proportional to the diff's leaves, not
   the whole address space. *)
let fold_delta ~parent t ~init ~f =
  check_alive t;
  check_alive parent;
  let acc = ref init in
  Array.iteri
    (fun dir leaf ->
      match leaf with
      | None -> ()
      | Some leaf ->
          let shared =
            match parent.dirs.(dir) with
            (* seusslint: allow physical-eq — leaf sharing between snapshot layers is identity by construction *)
            | Some p -> p == leaf
            | None -> false
          in
          if not shared then
            let parent_entries =
              match parent.dirs.(dir) with
              | Some p -> Some p.entries
              | None -> None
            in
            for i = 0 to entries - 1 do
              let e = leaf.entries.(i) in
              if Entry.present e then
                let same =
                  match parent_entries with
                  | Some pe ->
                      let p = pe.(i) in
                      Entry.present p && Entry.frame p = Entry.frame e
                  | None -> false
                in
                if not same then acc := f !acc ~vpn:((dir * entries) + i) e
            done)
    t.dirs;
  !acc

let count_present t = fold_present t ~init:0 ~f:(fun n ~vpn:_ _ -> n + 1)

let count_dirty t =
  fold_present t ~init:0 ~f:(fun n ~vpn:_ e ->
      if Entry.dirty e then n + 1 else n)

let leaf_tables t =
  check_alive t;
  Array.fold_left
    (fun n leaf -> match leaf with Some _ -> n + 1 | None -> n)
    0 t.dirs

let private_leaf_tables t =
  check_alive t;
  Array.fold_left
    (fun n leaf -> match leaf with Some l when l.rc = 1 -> n + 1 | _ -> n)
    0 t.dirs

let structure_bytes t =
  let word = 8 in
  let root = root_size * word in
  let leaf_bytes = entries * word in
  root + (private_leaf_tables t * leaf_bytes)

(* Validation (tests): walk a family of tables, deduplicating physically
   shared leaves, and return the per-frame reference counts the allocator
   should be reporting — each distinct leaf holds one reference per
   present entry, shared leaves exactly once. *)
let expected_refcounts tables =
  let seen = ref [] in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun t ->
      check_alive t;
      Array.iter
        (function
          | None -> ()
          | Some leaf ->
              if not (List.memq leaf !seen) then begin
                seen := leaf :: !seen;
                Array.iter
                  (fun e ->
                    if Entry.present e then
                      let f = Entry.frame e in
                      Hashtbl.replace counts f
                        (1
                        + Option.value ~default:0 (Hashtbl.find_opt counts f)))
                  leaf.entries
              end)
        t.dirs)
    tables;
  counts

let release t =
  check_alive t;
  Array.iteri
    (fun dir leaf ->
      match leaf with
      | None -> ()
      | Some leaf ->
          leaf.rc <- leaf.rc - 1;
          if leaf.rc = 0 then
            Array.iter
              (fun e ->
                if Entry.present e then Frame.decref t.frames (Entry.frame e))
              leaf.entries;
          t.dirs.(dir) <- None)
    t.dirs;
  t.released <- true
