(** Physical frame allocator with reference counting.

    Frames are metadata-only (an id plus a refcount): the simulation
    accounts 4 KiB per frame against the node budget without backing each
    frame with host memory, which is what makes the full 88 GB density
    experiment (Table 3) runnable on a laptop.

    Reference counts track *mappings*: a frame shared read-only between a
    snapshot and the UCs deployed from it has one reference per page-table
    leaf that names it, and is returned to the free list when the count
    reaches zero. *)

type t

type frame = int
(** Frame identifier. Valid ids are non-negative; ids are recycled. *)

exception Out_of_memory
(** Raised by {!alloc} when the node budget is exhausted. The SEUSS node
    catches this to trigger its OOM reclaimer; the density experiments
    catch it to find the capacity limit. *)

val create : ?budget_bytes:int64 -> unit -> t
(** [create ()] models the paper's 88 GB node; pass [budget_bytes] to
    scale experiments down. *)

val budget_bytes : t -> int64

val budget_frames : t -> int

val alloc : t -> frame
(** A fresh frame with refcount 1. @raise Out_of_memory at budget. *)

val incref : t -> frame -> unit

val decref : t -> frame -> unit
(** Frees the frame when the count reaches zero.
    @raise Invalid_argument on a dead frame. *)

val refcount : t -> frame -> int

val is_live : t -> frame -> bool
(** Whether [frame] currently names an allocated frame (refcount > 0).
    Never raises — the snapshot store uses it to validate its content
    index against frames freed behind its back. *)

val set_tag : t -> frame -> int -> unit
(** Stamp a nonzero content tag on a live frame. The snapshot store tags
    each frame it indexes with the page's content hash; the tag is
    cleared automatically when the frame's refcount reaches zero, so a
    recycled frame id can never present stale content.
    @raise Invalid_argument on a dead frame or a zero tag. *)

val tag : t -> frame -> int
(** The frame's content tag ([0] = untagged).
    @raise Invalid_argument on a dead frame. *)

val used_frames : t -> int

val used_bytes : t -> int64

val free_bytes : t -> int64

val peak_frames : t -> int
(** High-water mark of simultaneously live frames. *)

val total_allocs : t -> int
(** Cumulative {!alloc} calls (allocation-rate sanity checks). *)
