type frame = int

exception Out_of_memory

type t = {
  budget_frames : int;
  (* refcounts.(id) = 0 means the slot is free (and sits on free_list). *)
  mutable refcounts : int array;
  (* tags.(id) = 0 means untagged; a nonzero tag is a content identity
     stamped by the snapshot store and cleared when the frame is freed,
     so a recycled id can never masquerade as old content. *)
  mutable tags : int array;
  mutable next_fresh : int;
  mutable free_list : int list;
  mutable live : int;
  mutable peak : int;
  mutable allocs : int;
}

let create ?(budget_bytes = Mconfig.default_budget_bytes) () =
  let frames = Int64.div budget_bytes (Int64.of_int Mconfig.page_size) in
  if Int64.compare frames 1L < 0 then invalid_arg "Frame.create: budget too small";
  {
    budget_frames = Int64.to_int frames;
    refcounts = Array.make 4096 0;
    tags = Array.make 4096 0;
    next_fresh = 0;
    free_list = [];
    live = 0;
    peak = 0;
    allocs = 0;
  }

let budget_frames t = t.budget_frames
let budget_bytes t = Mconfig.bytes_of_pages t.budget_frames

let ensure_capacity t id =
  if id >= Array.length t.refcounts then begin
    let cap = max (id + 1) (2 * Array.length t.refcounts) in
    let cap = min cap (max (id + 1) t.budget_frames) in
    let refcounts = Array.make cap 0 in
    Array.blit t.refcounts 0 refcounts 0 (Array.length t.refcounts);
    t.refcounts <- refcounts;
    let tags = Array.make cap 0 in
    Array.blit t.tags 0 tags 0 (Array.length t.tags);
    t.tags <- tags
  end

let alloc t =
  if t.live >= t.budget_frames then raise Out_of_memory;
  let id =
    match t.free_list with
    | id :: rest ->
        t.free_list <- rest;
        id
    | [] ->
        let id = t.next_fresh in
        t.next_fresh <- id + 1;
        ensure_capacity t id;
        id
  in
  t.refcounts.(id) <- 1;
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live;
  t.allocs <- t.allocs + 1;
  id

let check_live t id name =
  if id < 0 || id >= t.next_fresh || t.refcounts.(id) = 0 then
    invalid_arg (Printf.sprintf "Frame.%s: dead frame %d" name id)

let incref t id =
  check_live t id "incref";
  t.refcounts.(id) <- t.refcounts.(id) + 1

let decref t id =
  check_live t id "decref";
  t.refcounts.(id) <- t.refcounts.(id) - 1;
  if t.refcounts.(id) = 0 then begin
    t.tags.(id) <- 0;
    t.free_list <- id :: t.free_list;
    t.live <- t.live - 1
  end

let refcount t id =
  check_live t id "refcount";
  t.refcounts.(id)

let is_live t id = id >= 0 && id < t.next_fresh && t.refcounts.(id) > 0

let set_tag t id tag =
  check_live t id "set_tag";
  if tag = 0 then invalid_arg "Frame.set_tag: tag must be nonzero";
  t.tags.(id) <- tag

let tag t id =
  check_live t id "tag";
  t.tags.(id)

let used_frames t = t.live
let used_bytes t = Mconfig.bytes_of_pages t.live
let free_bytes t = Mconfig.bytes_of_pages (t.budget_frames - t.live)
let peak_frames t = t.peak
let total_allocs t = t.allocs
