type fault = No_fault | Zero_fill | Cow_copy

type t = {
  frames : Frame.t;
  pt : Page_table.t;
  mutable zero_fills : int;
  mutable cow_copies : int;
  (* Incremental counters: captures and deploys must be O(root), never
     O(mapped pages), for the 65k-function experiments to run. *)
  mutable dirty_count : int;
  mutable mapped_count : int;
  (* Instrumentation: invoked on every resolved fault. The owner (a UC)
     installs it so the fault handler feeds the node's telemetry without
     this layer depending on it. *)
  mutable on_fault : fault -> unit;
  (* Access trace (REAP-style working-set recording): while armed, every
     resolved fault appends its vpn, in fault order. Reversed buffer;
     [take_trace] restores order. *)
  mutable trace : int list option;
  mutable trace_len : int;
}

type write_stats = { pages : int; zero_fills : int; cow_copies : int }

type prefault_stats = {
  requested : int;
  prefault_zero_fills : int;
  prefault_cow_copies : int;
  already_mapped : int;
}

let create frames =
  {
    frames;
    pt = Page_table.create frames;
    zero_fills = 0;
    cow_copies = 0;
    dirty_count = 0;
    mapped_count = 0;
    on_fault = ignore;
    trace = None;
    trace_len = 0;
  }

(* The source must already be frozen (read-only + copy-on-write, clean
   dirty bits) — [Snapshot.capture] guarantees this. Sweeping the leaves
   here would make deploys O(mapped pages) instead of O(root). *)
let of_table ?(mapped_hint = -1) frames source =
  let pt = Page_table.clone_shallow source in
  let mapped =
    if mapped_hint >= 0 then mapped_hint else Page_table.count_present pt
  in
  {
    frames;
    pt;
    zero_fills = 0;
    cow_copies = 0;
    dirty_count = 0;
    mapped_count = mapped;
    on_fault = ignore;
    trace = None;
    trace_len = 0;
  }

let table t = t.pt
let allocator t = t.frames

let set_fault_hook t f = t.on_fault <- f

let trace_limit = 65_536

let start_trace t =
  t.trace <- Some [];
  t.trace_len <- 0

let record_fault t vpn =
  match t.trace with
  | None -> ()
  | Some vpns ->
      (* A runaway trace (a function touching more pages than any
         sensible working set) stops recording rather than growing
         unboundedly; [take_trace] still returns the prefix. *)
      if t.trace_len < trace_limit then begin
        t.trace <- Some (vpn :: vpns);
        t.trace_len <- t.trace_len + 1
      end

let take_trace t =
  match t.trace with
  | None -> []
  | Some vpns ->
      t.trace <- None;
      t.trace_len <- 0;
      List.rev vpns

let tracing t = t.trace <> None

let touch_write t ~vpn =
  let e = Page_table.get t.pt ~vpn in
  if not (Page_table.Entry.present e) then begin
    let frame = Frame.alloc t.frames in
    Page_table.set t.pt ~vpn
      (Page_table.Entry.make ~frame ~writable:true ~cow:false ~dirty:true
         ~accessed:true);
    t.zero_fills <- t.zero_fills + 1;
    t.dirty_count <- t.dirty_count + 1;
    t.mapped_count <- t.mapped_count + 1;
    record_fault t vpn;
    t.on_fault Zero_fill;
    Zero_fill
  end
  else if Page_table.Entry.writable e then begin
    if not (Page_table.Entry.dirty e) then t.dirty_count <- t.dirty_count + 1;
    if not (Page_table.Entry.dirty e && Page_table.Entry.accessed e) then
      Page_table.set t.pt ~vpn
        (Page_table.Entry.with_flags ~dirty:true ~accessed:true e);
    No_fault
  end
  else if Page_table.Entry.cow e then begin
    (* Clone the shared frame into a private writable copy. *)
    let frame = Frame.alloc t.frames in
    Page_table.set t.pt ~vpn
      (Page_table.Entry.make ~frame ~writable:true ~cow:false ~dirty:true
         ~accessed:true);
    t.cow_copies <- t.cow_copies + 1;
    t.dirty_count <- t.dirty_count + 1;
    record_fault t vpn;
    t.on_fault Cow_copy;
    Cow_copy
  end
  else
    invalid_arg
      (Printf.sprintf "Addr_space.touch_write: protection violation at vpn %d"
         vpn)

let touch_read t ~vpn =
  let e = Page_table.get t.pt ~vpn in
  if Page_table.Entry.present e && not (Page_table.Entry.accessed e) then
    Page_table.set t.pt ~vpn (Page_table.Entry.with_flags ~accessed:true e)

let write_range t ~vpn ~pages =
  if pages < 0 then invalid_arg "Addr_space.write_range: negative count";
  let zero = ref 0 and cow = ref 0 in
  for p = vpn to vpn + pages - 1 do
    match touch_write t ~vpn:p with
    | No_fault -> ()
    | Zero_fill -> incr zero
    | Cow_copy -> incr cow
  done;
  { pages; zero_fills = !zero; cow_copies = !cow }

let write_bytes t ~addr ~len =
  if addr < 0 || len < 0 then invalid_arg "Addr_space.write_bytes: negative";
  if len = 0 then { pages = 0; zero_fills = 0; cow_copies = 0 }
  else begin
    let first = addr / Mconfig.page_size in
    let last = (addr + len - 1) / Mconfig.page_size in
    write_range t ~vpn:first ~pages:(last - first + 1)
  end

(* Batched working-set installation (REAP): bring every vpn to exactly
   the state a demand [touch_write] would leave it in — fresh zero frame,
   private COW copy, or dirty+accessed flags on an already-writable page —
   without taking a per-page fault. Lifetime/mapped/dirty counters move
   exactly as under demand faulting (prefaulted pages are private pages
   and must charge footprints identically); only the per-fault hook stays
   silent, because no faults occur — the caller charges one batched cost
   from the returned stats instead. Structural sharing is preserved: only
   leaves containing prefaulted vpns are privatized, by the same
   [Page_table.set] path demand faults use.
   @raise Frame.Out_of_memory mid-batch like [write_range]. *)
let prefault t ~vpns =
  let zero = ref 0 and cow = ref 0 and present = ref 0 in
  List.iter
    (fun vpn ->
      let e = Page_table.get t.pt ~vpn in
      if not (Page_table.Entry.present e) then begin
        let frame = Frame.alloc t.frames in
        Page_table.set t.pt ~vpn
          (Page_table.Entry.make ~frame ~writable:true ~cow:false ~dirty:true
             ~accessed:true);
        t.zero_fills <- t.zero_fills + 1;
        t.dirty_count <- t.dirty_count + 1;
        t.mapped_count <- t.mapped_count + 1;
        incr zero
      end
      else if Page_table.Entry.writable e then begin
        if not (Page_table.Entry.dirty e) then
          t.dirty_count <- t.dirty_count + 1;
        if not (Page_table.Entry.dirty e && Page_table.Entry.accessed e) then
          Page_table.set t.pt ~vpn
            (Page_table.Entry.with_flags ~dirty:true ~accessed:true e);
        incr present
      end
      else if Page_table.Entry.cow e then begin
        let frame = Frame.alloc t.frames in
        Page_table.set t.pt ~vpn
          (Page_table.Entry.make ~frame ~writable:true ~cow:false ~dirty:true
             ~accessed:true);
        t.cow_copies <- t.cow_copies + 1;
        t.dirty_count <- t.dirty_count + 1;
        incr cow
      end
      else
        invalid_arg
          (Printf.sprintf "Addr_space.prefault: protection violation at vpn %d"
             vpn))
    vpns;
  {
    requested = List.length vpns;
    prefault_zero_fills = !zero;
    prefault_cow_copies = !cow;
    already_mapped = !present;
  }

let mapped_pages t = t.mapped_count
let mapped_pages_slow t = Page_table.count_present t.pt
let resident_bytes t = Mconfig.bytes_of_pages (mapped_pages t)
let dirty_pages t = t.dirty_count
let dirty_pages_slow t = Page_table.count_dirty t.pt

let clear_dirty t =
  Page_table.clear_dirty_all t.pt;
  t.dirty_count <- 0

let freeze t =
  Page_table.mark_all_cow_clean t.pt;
  t.dirty_count <- 0
let lifetime_zero_fills (t : t) = t.zero_fills
let lifetime_cow_copies (t : t) = t.cow_copies
let release t = Page_table.release t.pt
