(** Two-level page tables with structural sharing.

    This is the mechanism behind SEUSS's cheap deploys: "deployment
    consists mainly of a memory copy of page table structures" (Table 3).
    {!clone_shallow} copies only the root directory and shares the leaf
    tables; a leaf is privatized (copied) the first time a table writes
    through it, so the per-UC page-table overhead is proportional to the
    pages the UC actually dirties.

    Reference-count discipline: installing a present entry with {!set}
    consumes one reference to its frame (the caller must hold it, e.g.
    fresh from [Frame.alloc]); overwriting or clearing a present entry
    releases the old frame's reference; privatizing or releasing a leaf
    adjusts the references of every present entry it contains. *)

(** Packed page-table entries ([int]-encoded, absent = {!Entry.absent}). *)
module Entry : sig
  type t = int

  val absent : t

  val make :
    frame:Frame.frame ->
    writable:bool ->
    cow:bool ->
    dirty:bool ->
    accessed:bool ->
    t

  val present : t -> bool
  val frame : t -> Frame.frame
  val writable : t -> bool
  val cow : t -> bool
  val dirty : t -> bool
  val accessed : t -> bool

  val with_flags :
    ?writable:bool -> ?cow:bool -> ?dirty:bool -> ?accessed:bool -> t -> t
  (** Same frame, updated flags. *)
end

type t

val max_vpn : int
(** Virtual page numbers range over [\[0, max_vpn)] (1 GiB of VA with
    x86-64-like 512-entry tables — ample for one unikernel context). *)

val create : Frame.t -> t
(** An empty table drawing frames' refcount operations from the given
    allocator. *)

val clone_shallow : t -> t
(** Share all leaves with the source; O(root size). This is the deploy
    and snapshot-freeze primitive. *)

val get : t -> vpn:int -> Entry.t

val set : t -> vpn:int -> Entry.t -> unit
(** Install/replace/clear the entry for [vpn], privatizing the leaf if it
    is shared. See the refcount discipline above. *)

val mark_all_cow_clean : t -> unit
(** In-place, across *shared* leaves: every present entry becomes
    read-only + copy-on-write with the dirty bit cleared. This is the
    snapshot-capture barrier — intentionally visible through every table
    sharing these leaves (the captured UC keeps running but now faults on
    write, exactly like the hardware after write-protecting a live
    address space). *)

val clear_dirty_all : t -> unit
(** In-place dirty-bit reset (also applies to shared leaves). *)

val fold_present : t -> init:'a -> f:('a -> vpn:int -> Entry.t -> 'a) -> 'a

val fold_delta :
  parent:t -> t -> init:'a -> f:('a -> vpn:int -> Entry.t -> 'a) -> 'a
(** Fold over the pages this table maps through a {e different} frame
    than [parent] (or maps where [parent] maps nothing) — the delta
    layer a stacked snapshot stores beyond structural sharing. Leaves
    physically shared with [parent] are skipped wholesale (structural
    sharing makes their entries identical), so the walk costs
    O(privatized leaves), not O(address space). *)

val count_present : t -> int

val count_dirty : t -> int

val leaf_tables : t -> int
(** Materialized leaves reachable from this root. *)

val private_leaf_tables : t -> int
(** Leaves with reference count 1 (not shared with any other table). *)

val structure_bytes : t -> int
(** Host-page-table overhead accounted to this table: the root plus its
    *private* share of leaves (shared leaves are charged to one owner). *)

val expected_refcounts : t list -> (int, int) Hashtbl.t
(** Validation helper for tests: per-frame reference counts implied by a
    family of live tables — one reference per present entry per
    {e distinct} leaf (physically shared leaves are counted once). A
    consistent allocator reports exactly these refcounts, and exactly
    [Hashtbl.length] frames live, when the family lists every table
    sharing its leaves. *)

val release : t -> unit
(** Drop this table: unshare every leaf, releasing frame references for
    leaves whose count reaches zero. The table must not be used after. *)
