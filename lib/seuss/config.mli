(** SEUSS node configuration. *)

type ao_level =
  | Ao_none  (** capture the base snapshot right at driver start *)
  | Ao_network  (** prime the TCP buffer pool and send path first *)
  | Ao_full  (** network priming plus a dummy compile + run (§7) *)

(** Victim-selection policy of the byte-budgeted snapshot store. *)
type snap_policy =
  | Snap_lru  (** least-recently-used function snapshot first *)
  | Snap_ws
      (** working-set-informed: snapshots with no recorded working set
          go first (nothing proves they are worth keeping warm), then
          lowest working-set-to-delta ratio — the snapshots whose
          resident pages buy the fewest prefaultable pages *)

type t = {
  cores : int;  (** compute-node VCPUs; the paper's VM has 16 *)
  ao : ao_level;
  cache_function_snapshots : bool;
      (** snapshot stacks on/off — ablation: off makes every miss a full
          cold path against the base snapshot *)
  cache_idle_ucs : bool;  (** hot-path cache on/off *)
  oom_headroom_bytes : int64;
      (** reclaim idle UCs when free memory drops below this floor (§6:
          "a pre-defined threshold") *)
  max_function_snapshots : int;
      (** bound on cached function snapshots; evictions respect §6's
          deletion-safety rule (only snapshots with no active UCs and no
          child snapshots are deleted, oldest first) *)
  invoke_timeout : float;  (** seconds before an invocation errors out *)
  prefault_working_set : bool;
      (** REAP-style warm deploys: record the vpns demand-faulted by the
          first invocation from each function snapshot and batch-install
          them on every later deploy, replacing the demand-fault storm
          with one [Cost.prefault_time] pass. Off by default — the off
          path is bit-identical to a build without the feature. *)
  snapshot_cache_bytes : int64;
      (** byte budget of the content-addressed snapshot store. [0L]
          (default) disarms the store entirely: function snapshots are
          kept as plain stacks exactly as before the store existed — the
          off path is bit-identical to a build without the feature. A
          positive budget routes function snapshots through
          [Snapstore]: page-level dedup, delta accounting, and
          [snapshot_cache_policy]-driven eviction when residency would
          exceed the budget (evicted functions fall back to cold
          boot). *)
  snapshot_cache_policy : snap_policy;
      (** victim selection when the store exceeds its byte budget;
          ignored while [snapshot_cache_bytes = 0L] *)
  runtimes : Unikernel.Image.t list;  (** images to boot at node start *)
}

val default : t
(** 16 cores, full AO, both caches on, 1 GiB OOM headroom, 60 s timeout,
    Node.js runtime. *)

val ao_name : ao_level -> string

val policy_name : snap_policy -> string
(** ["lru"] / ["ws"] — the spelling used in events, metrics and the
    [SEUSS_SNAP_POLICY] env hook. *)

val policy_of_name : string -> snap_policy option
