type ao_level = Ao_none | Ao_network | Ao_full

type snap_policy = Snap_lru | Snap_ws

type t = {
  cores : int;
  ao : ao_level;
  cache_function_snapshots : bool;
  cache_idle_ucs : bool;
  oom_headroom_bytes : int64;
  max_function_snapshots : int;
  invoke_timeout : float;
  prefault_working_set : bool;
  snapshot_cache_bytes : int64;
  snapshot_cache_policy : snap_policy;
  runtimes : Unikernel.Image.t list;
}

let default =
  {
    cores = 16;
    ao = Ao_full;
    cache_function_snapshots = true;
    cache_idle_ucs = true;
    oom_headroom_bytes = Int64.of_int (Mem.Mconfig.mib 1024);
    max_function_snapshots = 200_000;
    invoke_timeout = 60.0;
    prefault_working_set = false;
    snapshot_cache_bytes = 0L;
    snapshot_cache_policy = Snap_lru;
    runtimes = [ Unikernel.Image.node ];
  }

let ao_name = function
  | Ao_none -> "none"
  | Ao_network -> "network"
  | Ao_full -> "network+interpreter"

let policy_name = function Snap_lru -> "lru" | Snap_ws -> "ws"

let policy_of_name = function
  | "lru" -> Some Snap_lru
  | "ws" -> Some Snap_ws
  | _ -> None
