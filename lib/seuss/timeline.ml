let env_var = "SEUSS_TIMELINE"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> false  (* "" = unset: callers can't delete env vars *)
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> true
      | "0" | "false" | "no" | "off" -> false
      | _ ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!" env_var s;
          false)

let default_period = 0.1

let start ?(period = default_period) node =
  if not (Float.is_finite period) || period <= 0.0 then
    invalid_arg "Timeline.start: period must be finite and positive";
  let env = Node.env node in
  let engine = env.Osenv.engine in
  Sim.Engine.spawn engine ~name:"timeline-sampler" ~daemon:true (fun () ->
      (* Terminate with the simulation: [pending] counts everyone
         else's scheduled work, so when it reaches zero nothing the
         sampler could observe will ever change again — sleeping on
         would only stretch the run's end time. Emission itself costs
         no simulated time and draws nothing from the PRNG. *)
      let rec loop () =
        if Sim.Engine.pending engine > 0 then begin
          Sim.Engine.sleep period;
          Osenv.emit env
            (Obs.Event.Timeline_sample
               {
                 run_queue = Sim.Engine.pending engine;
                 in_flight = Node.in_flight node;
                 free_bytes = Node.free_bytes node;
                 idle_ucs = Node.idle_uc_count node;
                 cached_snapshots = Node.snapshot_count node;
                 stuck_waiters = Sim.Engine.stuck_waiters engine;
               });
          loop ()
        end
      in
      loop ())

let maybe_start_from_env ?period node = if of_env () then start ?period node

type sample = {
  time : float;
  run_queue : int;
  in_flight : int;
  free_bytes : int64;
  idle_ucs : int;
  cached_snapshots : int;
  stuck_waiters : int;
}

let samples_of_records records =
  List.filter_map
    (fun (r : Obs.Log.record) ->
      match r.Obs.Log.ev with
      | Obs.Event.Timeline_sample
          {
            run_queue;
            in_flight;
            free_bytes;
            idle_ucs;
            cached_snapshots;
            stuck_waiters;
          } ->
          Some
            {
              time = r.Obs.Log.time;
              run_queue;
              in_flight;
              free_bytes;
              idle_ucs;
              cached_snapshots;
              stuck_waiters;
            }
      | _ -> None)
    records

let render samples =
  match samples with
  | [] -> "(no timeline samples — arm the sampler with SEUSS_TIMELINE=1)\n"
  | _ ->
      let series sel = List.map (fun s -> (s.time, sel s)) samples in
      let activity =
        Stats.Asciiplot.create ~title:"Resource timeline: load"
          ~xlabel:"time (s)" ~ylabel:"count" ()
      in
      Stats.Asciiplot.add_series activity ~label:"run queue" ~mark:'q'
        (series (fun s -> float_of_int s.run_queue));
      Stats.Asciiplot.add_series activity ~label:"in-flight" ~mark:'i'
        (series (fun s -> float_of_int s.in_flight));
      Stats.Asciiplot.add_series activity ~label:"idle UCs" ~mark:'u'
        (series (fun s -> float_of_int s.idle_ucs));
      Stats.Asciiplot.add_series activity ~label:"snapshots" ~mark:'s'
        (series (fun s -> float_of_int s.cached_snapshots));
      let memory =
        Stats.Asciiplot.create ~title:"Resource timeline: memory"
          ~xlabel:"time (s)" ~ylabel:"free MiB" ()
      in
      Stats.Asciiplot.add_series memory ~label:"free" ~mark:'M'
        (series (fun s -> Int64.to_float s.free_bytes /. (1024.0 *. 1024.0)));
      let worst_stuck =
        List.fold_left (fun acc s -> max acc s.stuck_waiters) 0 samples
      in
      Printf.sprintf "%s\n%s\n%d samples; max stuck waiters observed: %d\n"
        (Stats.Asciiplot.render activity)
        (Stats.Asciiplot.render memory)
        (List.length samples) worst_stuck
