(** Host-side (SEUSS OS) cost model.

    Each constant documents its provenance in the paper. Guest-side
    costs live in {!Unikernel.Gconst}; page-fault hardware costs in
    {!Mem.Mconfig}. The macro experiments inherit everything from here —
    they introduce no latency constants of their own. *)

val uc_create : float
(** Allocating the UC structures and port mapping (~150 us). *)

val pt_shallow_copy : float
(** "Deployment consists mainly of a memory copy of page table
    structures" (Table 3 caption): root directory copy + bookkeeping. *)

val context_switch : float
(** Mapping the new root, TLB flush, switch to ring 3 (§6). *)

val regs_restore : float
(** "Execution begins by triggering a breakpoint exception and
    overwriting the exception frame with the register values contained
    within the snapshot" (§6). *)

val deploy_total : float
(** Sum of the above — "deploying from a runtime snapshot is a
    sub-millisecond operation" (§7): ~0.5 ms here. *)

val capture_fixed : float
(** Trap into the kernel-mode snapshot handler and record register
    state. *)

val capture_per_dirty_page : float
(** Cloning each dirty page into the snapshot: Table 1 measures ~400 us
    for a 512-page function snapshot, i.e. [Mem.Mconfig.page_copy_time]. *)

val destroy : float
(** Tearing down a UC (page-table release, proxy unmapping). *)

val oom_scan : float
(** Per-UC cost of the trivial OOM reclaimer's scan (§6). *)

val shim_per_message : float
(** The Linux-side shim relays each request and each response over its
    single TCP connection; the two transfers serialize at ~3.9 ms each,
    reproducing both Table 3's shim-bound 128.6 creations/s and the
    "about 8 ms" the extra hop adds to hot round trips (§7). *)

(** {2 Working-set prefault (REAP, Ustiugov et al. ASPLOS '21)}

    A demand fault pays a VM exit, handler dispatch, and TLB refill on
    top of the page work itself; those trap costs are folded into
    {!Mem.Mconfig.page_copy_time} (0.78 us) and
    {!Mem.Mconfig.zero_fill_time} (0.35 us). Installing a recorded
    working set in one batched page-table pass keeps only the copy/zero
    work — REAP measures the record-and-prefetch path eliminating ~97%
    of cold-start page-fault stalls; we model the per-page saving
    conservatively as the trap share of each fault (~0.33 us of a COW
    fault, ~0.20 us of a zero fill). *)

val prefault_fixed : float
(** One trap into the prefault handler per batch (~12 us), regardless
    of batch size. *)

val prefault_cow_per_page : float
(** Copying one snapshot page during a batched install: the 0.78 us
    demand COW fault minus its trap share. *)

val prefault_zero_per_page : float
(** Mapping one fresh zero page during a batched install: the 0.35 us
    demand zero fill minus its trap share. *)

val prefault_time : Mem.Addr_space.prefault_stats -> float
(** Core time for one batch: fixed trap + per-page install work.
    Already-mapped pages are free (flag updates ride the same pass). *)

(** {2 Content-addressed snapshot store}

    Only charged when [Config.snapshot_cache_bytes > 0L] — a disarmed
    store burns nothing, keeping the off path bit-identical. *)

val snap_index_fixed : float
(** Store bookkeeping per inserted snapshot (~25 us): member record,
    residency accounting, index probes beyond hashing. *)

val snap_hash_per_page : float
(** Hashing one delta page into the content index. xxh3 streams a 4 KiB
    page in well under 1 us on 2016-era cores; 0.12 us is a page already
    in cache, which capture just touched. *)

val snap_evict_fixed : float
(** Victim scan + unlink of one evicted member (~30 us, the same order
    as {!destroy} since eviction releases a table the same way). *)

val snap_index_time : delta_pages:int -> float
(** Core time to insert one snapshot: fixed cost + per-page hashing. *)
