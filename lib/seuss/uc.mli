(** Unikernel contexts: the unit of deployment and isolation (§3).

    A UC owns an address space, a driver port behind the per-core proxy,
    and a guest simulation process. The host talks to it two ways: over
    the driver TCP connection (run arguments, warm-ups) and through the
    breakpoint hypercall (boot/compile completion, checkpoint requests)
    — the latter models watching the x86 debug register. *)

type t

type status = Running | Dead

val boot : Osenv.t -> Unikernel.Image.t -> t
(** Cold-boot a fresh unikernel (used once per runtime, to build the
    base snapshot). The guest will reach the ["driver-started"]
    breakpoint; await it with {!await_breakpoint}. *)

val deploy : Osenv.t -> Snapshot.t -> t
(** Deploy from a snapshot: shallow page-table copy, guest state
    restore, register state injection — charges {!Cost.deploy_total}.
    Takes a dependency reference on the snapshot.
    @raise Invalid_argument on a deleted snapshot. *)

val id : t -> int

val port : t -> int

val status : t -> status

val source_snapshot : t -> Snapshot.t option

val guest_state : t -> Unikernel.Guest.state
(** @raise Invalid_argument before the guest has started or after death. *)

val await_breakpoint : t -> timeout:float -> string option
(** Block until the guest reaches its next breakpoint; the guest stays
    parked until {!resume}. *)

val resume : t -> unit
(** Release a guest parked at a breakpoint. *)

val connect : t -> bool
(** Establish (or reuse) the host-side driver connection. *)

val send : t -> Unikernel.Driver.command -> bool
(** Fire a command without waiting for a network reply ([Init],
    [Checkpoint] — their ack is a breakpoint). [false] if no
    connection. *)

val request :
  t ->
  Unikernel.Driver.command ->
  timeout:float ->
  (Unikernel.Driver.reply, [ `Timeout | `Closed | `No_connection ]) result
(** Send and await the driver's network reply. *)

val capture : t -> env:Osenv.t -> name:string -> Snapshot.t
(** Snapshot this UC (it must be parked at a breakpoint). The UC's
    source snapshot becomes the parent. *)

val start_ws_record : t -> unit
(** Begin recording the vpns this UC demand-faults, in fault order
    (REAP-style working-set record; see {!Config.t.prefault_working_set}). *)

val take_ws_record : t -> int list
(** Stop recording and return the ordered faulted vpns ([[]] if
    recording was never started). *)

val prefault : t -> vpns:int list -> Mem.Addr_space.prefault_stats
(** Batch-install a recorded working set into this UC's address space
    before the guest runs: pages are resident synchronously (no yield
    until after install), then one {!Cost.prefault_time} charge covers
    the batch and a [Ws_prefault] event is emitted. Demand-fault
    telemetry (hooks, COW events) does not fire for prefaulted pages. *)

val destroy : t -> unit
(** Kill the UC: close the connection, unmap the proxy port, release
    all private frames, drop the snapshot reference. Idempotent, and
    safe on a UC whose guest already died on its own (OOM): resources
    are released exactly once regardless of how the UC reached [Dead];
    the {!Cost.destroy} charge applies only on the [Running] -> [Dead]
    transition. *)

val private_pages : t -> int
(** Frames exclusively owned by this UC (zero-fills + COW copies since
    deploy) — its marginal memory footprint. *)

val footprint_bytes : t -> int64
(** [private_pages * page_size] plus private page-table structures. *)

val last_used : t -> float

val touch_lru : t -> unit
(** Record use (for the OOM reclaimer's eviction order). *)

val is_released : t -> bool
(** [true] once {!destroy} (or guest death followed by destroy) has
    given the UC's frames and snapshot reference back. *)

val table : t -> Mem.Page_table.t
(** The UC's live page table — read by the ownership census to account
    for the frame references its address space still holds. *)
