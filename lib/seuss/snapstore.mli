(** Content-addressed function-snapshot store: page dedup, delta
    accounting, and byte-budgeted eviction.

    Armed by {!Config.t.snapshot_cache_bytes} > 0. The store owns the
    node's function snapshots as {e members}: at insert it walks the
    snapshot's delta layer (the pages it maps through different frames
    than its parent — {!Mem.Page_table.fold_delta}), derives each page's
    content identity, and rewrites delta entries whose content is
    already indexed to share the canonical frame — so identical pages
    captured by {e different} function snapshots collapse to one frame,
    beyond the structural parent-sharing snapshots already have.

    Frames are metadata-only, so content identity is synthesized from
    the deterministic guest memory layout: every page outside the
    compiled-bytecode tail of the heap keys on (runtime, vpn) — all
    compile-ok captures of a runtime write the same content there — and
    the bytecode tail is salted by the program source. Canonical frames
    are stamped with their content hash via {!Mem.Frame.set_tag}, giving
    {!check} a liveness/identity cross-check that survives frame-id
    recycling (tags clear on free).

    Residency is [page_size * distinct content pages + per-member
    page-table structure]; when it exceeds the budget, unpinned members
    (snapshot dependents = 0) are evicted under the configured
    {!Config.snap_policy} until it fits, each eviction emitting
    {!Obs.Event.Snap_evict} and falling the function back to the cold
    path. All ordering is deterministic: a logical insert/lookup tick,
    [Det]-ordered victim scans, no wallclock, no PRNG draws. *)

type t

val create :
  env:Osenv.t ->
  budget_bytes:int64 ->
  policy:Config.snap_policy ->
  on_evict:(fn_id:string -> unit) ->
  t
(** [on_evict] fires (before the snapshot is deleted) for every member
    the budget sweep removes, so the owner can drop its own handle —
    the node unhooks the function from its snapshot table. *)

val insert : t -> fn_id:string -> Snapshot.t -> unit
(** Adopt a freshly captured function snapshot: hash and dedup its
    delta pages (rewriting matches to canonical frames), account its
    residency, emit [Snap_delta] + [Snap_dedup], then enforce the
    budget. Charges {!Cost.snap_index_time} of core time — must run
    inside a simulation process.
    @raise Invalid_argument if [fn_id] is already a member. *)

val lookup : t -> string -> Snapshot.t option
(** The member snapshot for a function, counting a hit or miss and
    touching recency. Inspection that must not disturb the policy state
    should go through {!members} instead. *)

val forget : t -> fn_id:string -> Snapshot.t -> bool
(** Delete a specific snapshot if nothing depends on it, unlinking its
    membership (if any) on success; [false] leaves everything in place.
    Falls back to a plain {!Snapshot.try_delete} when [fn_id] is not a
    member. *)

val drain : t -> unit
(** Teardown sweep ([Det]-ordered): try to delete every member's
    snapshot and unlink all membership and index state regardless, so
    the store ends empty. Pinned snapshots survive deletion (their
    owner is expected to be tearing them down too). *)

val members : t -> (string * Snapshot.t) list
(** Current members, sorted by fn_id. Does not touch recency. *)

val member_count : t -> int

val index_pages : t -> int
(** Distinct content pages currently indexed. *)

val resident_bytes : t -> int64

val peak_resident_bytes : t -> int64

val budget_bytes : t -> int64

val policy : t -> Config.snap_policy

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val pages_inserted : t -> int
(** Cumulative delta pages across all inserts. *)

val pages_unique : t -> int
(** Cumulative pages that were first-of-their-content at insert. *)

val dedup_ratio : t -> float
(** [pages_inserted / pages_unique] — 1.0 means no sharing was found;
    the paper-shaped workload (many functions on one runtime) pushes
    this far above 1. *)

val check : t -> string list
(** Self-validation for the property battery: every index entry names a
    live frame tagged with its hash and its holder count equals the
    members' references to it; residency accounting recomputes exactly;
    the budget holds unless every member is pinned. Returns violations
    ([[]] = consistent). *)
