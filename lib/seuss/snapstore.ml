(* The content-addressed function-snapshot store.

   Frames are metadata-only, so "content" is synthesized from the guest
   memory layout, which is deterministic by construction: every function
   snapshot of a runtime is captured at the same compile-ok breakpoint,
   after the same restore/accept/compile writes landed at the same vpns.
   The only pages whose content depends on the function are the compiled
   bytecode at the tail of the heap bump extent — those are salted by
   the program source; everything else keys on (runtime, vpn). Two
   functions with identical source on the same runtime therefore share
   even their bytecode, which is exactly what a real content hash over
   page bytes would find. *)

type ix_entry = {
  ix_frame : Mem.Frame.frame;
      (* canonical frame for this content; kept live by the member
         tables that map it (the index itself holds no reference) *)
  mutable holders : int;  (* member delta pages naming this content *)
}

type member = {
  m_snap : Snapshot.t;
  m_hashes : int array;  (* content hash of each delta page *)
  m_delta_pages : int;
  m_shared_pages : int;
  m_unique_pages : int;
  m_structure_bytes : int;  (* member-private page-table overhead *)
  mutable m_last_used : int;  (* logical tick, not wallclock *)
  mutable m_uses : int;
}

type t = {
  env : Osenv.t;
  budget : int64;
  policy : Config.snap_policy;
  on_evict : fn_id:string -> unit;
  index : (int, ix_entry) Hashtbl.t;  (* content hash -> canonical page *)
  members : (string, member) Hashtbl.t;  (* fn_id -> member *)
  mutable tick : int;
  mutable structure_total : int;
  mutable peak_bytes : int64;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
  mutable pages_inserted_total : int;
  mutable pages_unique_total : int;
  c_inserts : Obs.Metrics.counter;
  c_hits : Obs.Metrics.counter;
  c_misses : Obs.Metrics.counter;
  c_evictions : Obs.Metrics.counter;
  c_pages_shared : Obs.Metrics.counter;
  c_pages_unique : Obs.Metrics.counter;
  g_resident : Obs.Metrics.gauge;
  g_members : Obs.Metrics.gauge;
  g_index : Obs.Metrics.gauge;
}

let create ~env ~budget_bytes ~policy ~on_evict =
  let m = env.Osenv.metrics in
  {
    env;
    budget = budget_bytes;
    policy;
    on_evict;
    index = Hashtbl.create 4096;
    members = Hashtbl.create 256;
    tick = 0;
    structure_total = 0;
    peak_bytes = 0L;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
    pages_inserted_total = 0;
    pages_unique_total = 0;
    c_inserts = Obs.Metrics.counter m "snapstore_inserts_total";
    c_hits = Obs.Metrics.counter m "snapstore_hits_total";
    c_misses = Obs.Metrics.counter m "snapstore_misses_total";
    c_evictions = Obs.Metrics.counter m "snapstore_evictions_total";
    c_pages_shared = Obs.Metrics.counter m "snapstore_pages_shared_total";
    c_pages_unique = Obs.Metrics.counter m "snapstore_pages_unique_total";
    g_resident = Obs.Metrics.gauge m "snapstore_resident_bytes";
    g_members = Obs.Metrics.gauge m "snapstore_members";
    g_index = Obs.Metrics.gauge m "snapstore_index_pages";
  }

let budget_bytes t = t.budget
let policy t = t.policy
let member_count t = Hashtbl.length t.members
let index_pages t = Hashtbl.length t.index
let hits t = t.hit_count
let misses t = t.miss_count
let evictions t = t.eviction_count
let pages_inserted t = t.pages_inserted_total
let pages_unique t = t.pages_unique_total

let dedup_ratio t =
  if t.pages_unique_total = 0 then 1.0
  else float_of_int t.pages_inserted_total /. float_of_int t.pages_unique_total

let resident_bytes t =
  Int64.add
    (Mem.Mconfig.bytes_of_pages (Hashtbl.length t.index))
    (Int64.of_int t.structure_total)

let peak_resident_bytes t = t.peak_bytes

let refresh_gauges t =
  Obs.Metrics.set_gauge t.g_resident (Int64.to_float (resident_bytes t));
  Obs.Metrics.set_gauge t.g_members (float_of_int (Hashtbl.length t.members));
  Obs.Metrics.set_gauge t.g_index (float_of_int (Hashtbl.length t.index))

let members t =
  List.map (fun (fn_id, m) -> (fn_id, m.m_snap)) (Det.bindings t.members)

(* {1 Content identity} *)

(* djb2 folded into 62 bits — deterministic across runs and platforms,
   never 0 (0 is Frame's "untagged"). *)
let hash_string s =
  let h = ref 5381 in
  String.iter
    (fun c -> h := ((!h * 33) + Char.code c) land 0x3FFFFFFFFFFFFFF)
    s;
  if !h = 0 then 1 else !h

(* The function-specific region of a snapshot's address space: the
   compiled bytecode occupies the last [source_bytes * 4] bytes of the
   heap bump extent (see [Unikernel.Guest.compile_into]), plus the page
   it straddles into. Everything outside keys on (runtime, vpn). *)
let fn_region (snap : Snapshot.t) =
  match Unikernel.Guest.snapshot_program_source snap.Snapshot.guest with
  | Some src ->
      let heap_pages =
        Unikernel.Guest.snapshot_heap_pages snap.Snapshot.guest
      in
      let page = Mem.Mconfig.page_size in
      let code_pages = (((String.length src * 4) + page - 1) / page) + 1 in
      let code_pages = min code_pages heap_pages in
      let hi = Unikernel.Gconst.heap_base + heap_pages in
      (hi - code_pages, hi, src)
  | None ->
      (* No loaded program (not a compile-ok capture): refuse to share
         anything — salt every page by the snapshot's own name. *)
      (0, max_int, snap.Snapshot.name)

let content_hashes (snap : Snapshot.t) delta =
  let rt =
    Unikernel.Image.runtime_name snap.Snapshot.image.Unikernel.Image.runtime
  in
  let fn_lo, fn_hi, salt = fn_region snap in
  List.map
    (fun (vpn, _) ->
      if vpn >= fn_lo && vpn < fn_hi then
        hash_string (Printf.sprintf "fn:%s:%s:%d" rt salt vpn)
      else hash_string (Printf.sprintf "img:%s:%d" rt vpn))
    delta

let delta_entries (snap : Snapshot.t) =
  let collect acc ~vpn e = (vpn, e) :: acc in
  List.rev
    (match snap.Snapshot.parent with
    | Some p ->
        Mem.Page_table.fold_delta ~parent:p.Snapshot.table snap.Snapshot.table
          ~init:[] ~f:collect
    | None ->
        Mem.Page_table.fold_present snap.Snapshot.table ~init:[] ~f:collect)

(* Member-private page-table overhead: its root copy plus one leaf per
   directory its delta touches (the leaves it privatized away from the
   base; everything else is structurally shared and charged to the
   base). Computed from the delta's vpns so it is stable — the private
   leaf count of the live table shifts as the capturing UC retires. *)
let member_structure_bytes delta =
  let word = 8 in
  let per_leaf = Mem.Mconfig.entries_per_table * word in
  let root = 512 * word in
  let dirs = Hashtbl.create 16 in
  List.iter
    (fun (vpn, _) ->
      Hashtbl.replace dirs (vpn / Mem.Mconfig.entries_per_table) ())
    delta;
  root + (Hashtbl.length dirs * per_leaf)

(* Rewriting a delta entry to the canonical frame of its content: take
   the reference [Page_table.set] will consume; [set] drops the old
   private frame's reference (freeing it — the store was its only
   holder beyond this table). *)
let adopt_canonical frames table ~vpn entry frame =
  Mem.Frame.incref frames frame;
  Mem.Page_table.set table ~vpn
    (Mem.Page_table.Entry.make ~frame
       ~writable:(Mem.Page_table.Entry.writable entry)
       ~cow:(Mem.Page_table.Entry.cow entry)
       ~dirty:(Mem.Page_table.Entry.dirty entry)
       ~accessed:(Mem.Page_table.Entry.accessed entry))

(* {1 Membership} *)

(* Drop a member's index holds; returns the content pages whose last
   holder this was (their canonical frames die with the member's table
   release, which is the caller's side of the bargain). *)
let unlink t fn_id m =
  let freed = ref 0 in
  Array.iter
    (fun h ->
      match Hashtbl.find_opt t.index h with
      | None -> ()
      | Some ix ->
          ix.holders <- ix.holders - 1;
          if ix.holders = 0 then begin
            Hashtbl.remove t.index h;
            incr freed
          end)
    m.m_hashes;
  t.structure_total <- t.structure_total - m.m_structure_bytes;
  Hashtbl.remove t.members fn_id;
  !freed

(* Deterministic victim score, smaller evicts first. LRU orders by
   last-use tick; the working-set policy sends snapshots that never
   recorded a working set first (nothing proves they are worth keeping
   warm), then the lowest working-set-per-delta-page ratio. Both break
   ties by tick then fn_id, and [Det.fold] fixes the scan order. *)
let score t fn_id m =
  match t.policy with
  | Config.Snap_lru -> (0.0, 0.0, m.m_last_used, fn_id)
  | Config.Snap_ws ->
      let ws_pages =
        match Snapshot.working_set m.m_snap with
        | Some ws -> List.length ws
        | None -> 0
      in
      let has_ws = if ws_pages > 0 then 1.0 else 0.0 in
      let ratio =
        float_of_int ws_pages /. float_of_int (max 1 m.m_delta_pages)
      in
      (has_ws, ratio, m.m_last_used, fn_id)

let victim t =
  Det.fold
    (fun fn_id m best ->
      if Snapshot.dependents m.m_snap > 0 || Snapshot.is_deleted m.m_snap then
        best
      else
        let s = score t fn_id m in
        match best with
        | Some (_, _, bs) when compare bs s <= 0 -> best
        | _ -> Some (fn_id, m, s))
    t.members None

let evict_one t fn_id m =
  t.on_evict ~fn_id;
  Osenv.burn t.env Cost.snap_evict_fixed;
  let deleted = Snapshot.try_delete ~env:t.env m.m_snap in
  let freed = unlink t fn_id m in
  t.eviction_count <- t.eviction_count + 1;
  Obs.Metrics.inc t.c_evictions;
  Osenv.emit t.env
    (Obs.Event.Snap_evict
       {
         fn_id;
         pages_freed = freed;
         resident_bytes = resident_bytes t;
         policy = Config.policy_name t.policy;
       });
  ignore deleted

let rec enforce_budget t =
  if
    Int64.compare t.budget 0L > 0
    && Int64.compare (resident_bytes t) t.budget > 0
  then
    match victim t with
    | None -> () (* every member is pinned: tolerate the overrun *)
    | Some (fn_id, m, _) ->
        evict_one t fn_id m;
        enforce_budget t

let insert t ~fn_id (snap : Snapshot.t) =
  if Hashtbl.mem t.members fn_id then
    invalid_arg (Printf.sprintf "Snapstore.insert: duplicate member %S" fn_id);
  let frames = t.env.Osenv.frames in
  let delta = delta_entries snap in
  let delta_pages = List.length delta in
  Osenv.burn t.env (Cost.snap_index_time ~delta_pages);
  let hashes = content_hashes snap delta in
  let shared = ref 0 and unique = ref 0 in
  List.iter2
    (fun (vpn, e) h ->
      match Hashtbl.find_opt t.index h with
      | Some ix ->
          ix.holders <- ix.holders + 1;
          incr shared;
          if ix.ix_frame <> Mem.Page_table.Entry.frame e then
            adopt_canonical frames snap.Snapshot.table ~vpn e ix.ix_frame
      | None ->
          let f = Mem.Page_table.Entry.frame e in
          Mem.Frame.set_tag frames f h;
          Hashtbl.replace t.index h { ix_frame = f; holders = 1 };
          incr unique)
    delta hashes;
  let structure = member_structure_bytes delta in
  let m =
    {
      m_snap = snap;
      m_hashes = Array.of_list hashes;
      m_delta_pages = delta_pages;
      m_shared_pages = !shared;
      m_unique_pages = !unique;
      m_structure_bytes = structure;
      m_last_used = t.tick;
      m_uses = 0;
    }
  in
  t.tick <- t.tick + 1;
  Hashtbl.replace t.members fn_id m;
  t.structure_total <- t.structure_total + structure;
  t.pages_inserted_total <- t.pages_inserted_total + delta_pages;
  t.pages_unique_total <- t.pages_unique_total + !unique;
  Obs.Metrics.inc t.c_inserts;
  for _ = 1 to !shared do Obs.Metrics.inc t.c_pages_shared done;
  for _ = 1 to !unique do Obs.Metrics.inc t.c_pages_unique done;
  Osenv.emit t.env
    (Obs.Event.Snap_delta
       {
         snapshot = snap.Snapshot.name;
         parent =
           (match snap.Snapshot.parent with
           | Some p -> p.Snapshot.name
           | None -> "-");
         delta_pages;
         delta_bytes = Mem.Mconfig.bytes_of_pages delta_pages;
       });
  Osenv.emit t.env
    (Obs.Event.Snap_dedup
       {
         snapshot = snap.Snapshot.name;
         delta_pages;
         shared_pages = !shared;
         unique_pages = !unique;
       });
  enforce_budget t;
  let res = resident_bytes t in
  if Int64.compare res t.peak_bytes > 0 then t.peak_bytes <- res;
  refresh_gauges t

let lookup t fn_id =
  match Hashtbl.find_opt t.members fn_id with
  | None ->
      t.miss_count <- t.miss_count + 1;
      Obs.Metrics.inc t.c_misses;
      None
  | Some m ->
      m.m_last_used <- t.tick;
      t.tick <- t.tick + 1;
      m.m_uses <- m.m_uses + 1;
      t.hit_count <- t.hit_count + 1;
      Obs.Metrics.inc t.c_hits;
      Some m.m_snap

let forget t ~fn_id snap =
  match Hashtbl.find_opt t.members fn_id with
  | None -> Snapshot.try_delete ~env:t.env snap
  | Some m ->
      if Snapshot.try_delete ~env:t.env m.m_snap then begin
        ignore (unlink t fn_id m);
        refresh_gauges t;
        true
      end
      else false

let drain t =
  List.iter
    (fun (fn_id, m) ->
      ignore (Snapshot.try_delete ~env:t.env m.m_snap);
      ignore (unlink t fn_id m))
    (Det.bindings t.members);
  refresh_gauges t

(* {1 Self-validation (tests)} *)

let check t =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let frames = t.env.Osenv.frames in
  (* Index entries point at live, correctly tagged frames with a
     positive holder count... *)
  let recount = Hashtbl.create (Hashtbl.length t.index) in
  Det.iter
    (fun h ix ->
      if ix.holders <= 0 then bad "index %d: holders %d <= 0" h ix.holders;
      if not (Mem.Frame.is_live frames ix.ix_frame) then
        bad "index %d: canonical frame %d is dead" h ix.ix_frame
      else if Mem.Frame.tag frames ix.ix_frame <> h then
        bad "index %d: frame %d tagged %d" h ix.ix_frame
          (Mem.Frame.tag frames ix.ix_frame))
    t.index;
  (* ...and the holder counts are exactly the members' hash multiset. *)
  let structure = ref 0 in
  Det.iter
    (fun fn_id m ->
      if Snapshot.is_deleted m.m_snap then
        bad "member %s: snapshot deleted behind the store" fn_id;
      if m.m_shared_pages + m.m_unique_pages <> m.m_delta_pages then
        bad "member %s: shared %d + unique %d <> delta %d" fn_id
          m.m_shared_pages m.m_unique_pages m.m_delta_pages;
      structure := !structure + m.m_structure_bytes;
      Array.iter
        (fun h ->
          if not (Hashtbl.mem t.index h) then
            bad "member %s: hash %d missing from index" fn_id h;
          Hashtbl.replace recount h
            (1 + Option.value ~default:0 (Hashtbl.find_opt recount h)))
        m.m_hashes)
    t.members;
  Det.iter
    (fun h ix ->
      let n = Option.value ~default:0 (Hashtbl.find_opt recount h) in
      if n <> ix.holders then
        bad "index %d: holders %d but %d member pages" h ix.holders n)
    t.index;
  if !structure <> t.structure_total then
    bad "structure accounting: cached %d, recomputed %d" t.structure_total
      !structure;
  (* Over budget is only legal while every member is pinned. *)
  (if
     Int64.compare t.budget 0L > 0
     && Int64.compare (resident_bytes t) t.budget > 0
   then
     match victim t with
     | Some (fn_id, _, _) ->
         bad "over budget (%Ld > %Ld) with evictable member %s"
           (resident_bytes t) t.budget fn_id
     | None -> ());
  List.rev !problems
