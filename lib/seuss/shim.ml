type t = {
  env : Osenv.t;
  target : Node.t;
  (* One TCP connection to the VM: transfers serialize on it. *)
  conn_lock : Sim.Semaphore.t;
  mutable relayed : int;
}

let create env target =
  (* seussdead: lock shim.conn *)
  { env; target; conn_lock = Sim.Semaphore.create 1; relayed = 0 }

let node t = t.target

let transfer t =
  Sim.Semaphore.with_permit t.conn_lock (fun () ->
      Sim.Engine.sleep Cost.shim_per_message);
  t.relayed <- t.relayed + 1

let invoke t fn ~args =
  transfer t;
  let result = Node.invoke t.target fn ~args in
  transfer t;
  result

let deploy_idle t runtime =
  transfer t;
  let ok = Node.deploy_idle t.target runtime in
  transfer t;
  ok

let messages_relayed t = t.relayed
