let uc_create = 150e-6
let pt_shallow_copy = 180e-6
let context_switch = 40e-6
let regs_restore = 30e-6
let deploy_total = uc_create +. pt_shallow_copy +. context_switch +. regs_restore
let capture_fixed = 60e-6
let capture_per_dirty_page = Mem.Mconfig.page_copy_time
let destroy = 120e-6
let oom_scan = 15e-6
let shim_per_message = 3.9e-3
let prefault_fixed = 12e-6
let prefault_cow_per_page = 0.45e-6
let prefault_zero_per_page = 0.15e-6

let snap_index_fixed = 25e-6
let snap_hash_per_page = 0.12e-6
let snap_evict_fixed = 30e-6

let snap_index_time ~delta_pages =
  snap_index_fixed +. (float_of_int delta_pages *. snap_hash_per_page)

let prefault_time (st : Mem.Addr_space.prefault_stats) =
  prefault_fixed
  +. (float_of_int st.Mem.Addr_space.prefault_cow_copies
     *. prefault_cow_per_page)
  +. (float_of_int st.Mem.Addr_space.prefault_zero_fills
     *. prefault_zero_per_page)
