type fn = {
  fn_id : string;
  runtime : Unikernel.Image.runtime;
  source : string;
}

type path = Cold | Warm | Hot

type invoke_error =
  [ `Compile_error of string
  | `Runtime_error of string
  | `Timeout
  | `No_runtime
  | `Overloaded ]

type stats = {
  cold : int;
  warm : int;
  hot : int;
  errors : int;
  retries : int;
  reclaimed_ucs : int;
  snapshots_captured : int;
}

(* Per-invocation phase accumulator, flushed into the Invoke_finish
   event: deploy (UC deploy + connect), import (source import + compile
   + function-snapshot capture, cold only), run (guest execution). *)
type phases = {
  mutable p_deploy : float;
  mutable p_import : float;
  mutable p_run : float;
}

(* One sampled invocation's captured trace (SEUSS_TRACE_SAMPLE). *)
type capture = {
  c_fn : string;
  c_path : path;
  c_t0 : float;
  c_spans : Sim.Trace.span list;
}

type t = {
  node_env : Osenv.t;
  cfg : Config.t;
  (* Trace sampling: capture every [n]-th invocation's span tree when
     [trace_every = Some n]. Pure counter arithmetic — no PRNG draws —
     so an unarmed node is byte-identical to one predating the hook. *)
  trace_every : int option;
  mutable invoke_seen : int;
  captured : capture Queue.t;  (* bounded to [capture_limit], oldest out *)
  mutable in_flight : int;
  mutable bases : (Unikernel.Image.runtime * Snapshot.t) list;
  (* Armed when [Config.snapshot_cache_bytes > 0L]: the content-addressed
     byte-budgeted store owns the function snapshots and [fn_snapshots]
     is kept as its exact mirror (the store's on_evict callback removes
     mirror entries). Unarmed (the default), the store does not exist and
     every path below is byte-identical to a build without it. *)
  mutable store : Snapstore.t option;
  fn_snapshots : (string, Snapshot.t) Hashtbl.t;
  (* Insertion order of function snapshots, for bounded-cache eviction. *)
  snap_order : string Queue.t;
  idle : (string, Uc.t Queue.t) Hashtbl.t;
  (* FIFO of (fn_id, uc) for oldest-first reclamation; entries go stale
     when a UC is taken for a hot invocation, so consumers re-validate. *)
  idle_order : (string * Uc.t) Queue.t;
  mutable idle_total : int;
  mutable last_uc : Uc.t option;
  (* Cached registry handles for the per-invocation hot path; the
     per-(path, runtime) invocation counters are looked up on demand. *)
  c_errors_cold : Obs.Metrics.counter;
  c_errors_warm : Obs.Metrics.counter;
  c_errors_hot : Obs.Metrics.counter;
  c_retried : Obs.Metrics.counter;
  c_reclaimed : Obs.Metrics.counter;
  c_oom_wakes : Obs.Metrics.counter;
  c_captured : Obs.Metrics.counter;
  g_free_bytes : Obs.Metrics.gauge;
  g_idle_ucs : Obs.Metrics.gauge;
  g_snapshots : Obs.Metrics.gauge;
}

let path_label = function Cold -> "cold" | Warm -> "warm" | Hot -> "hot"

let obs_path = function
  | Cold -> Obs.Event.Cold
  | Warm -> Obs.Event.Warm
  | Hot -> Obs.Event.Hot

let capture_limit = 32

let trace_sample_env_var = "SEUSS_TRACE_SAMPLE"

(* Accepts both spellings of a sampling rate: "1/N" (as documented) and
   bare "N". Malformed values warn and disarm, like the other hooks. *)
let trace_sample_of_env () =
  match Sys.getenv_opt trace_sample_env_var with
  | None | Some "" -> None  (* "" = unset: callers can't delete env vars *)
  | Some raw -> (
      let s = String.trim raw in
      let num =
        match String.index_opt s '/' with
        | Some i when String.sub s 0 i = "1" ->
            Some (String.sub s (i + 1) (String.length s - i - 1))
        | Some _ -> None
        | None -> Some s
      in
      match Option.bind num int_of_string_opt with
      | Some n when n >= 1 -> Some n
      | _ ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!"
            trace_sample_env_var raw;
          None)

let create ?(config = Config.default) ?trace_sample node_env =
  let m = node_env.Osenv.metrics in
  let errors p = Obs.Metrics.counter m ~labels:[ ("path", p) ] "node_errors_total" in
  let trace_every =
    match trace_sample with
    | Some _ -> trace_sample
    | None -> trace_sample_of_env ()
  in
  let t =
  {
    node_env;
    cfg = config;
    trace_every;
    invoke_seen = 0;
    captured = Queue.create ();
    in_flight = 0;
    bases = [];
    store = None;
    fn_snapshots = Hashtbl.create 1024;
    snap_order = Queue.create ();
    idle = Hashtbl.create 1024;
    idle_order = Queue.create ();
    idle_total = 0;
    last_uc = None;
    c_errors_cold = errors "cold";
    c_errors_warm = errors "warm";
    c_errors_hot = errors "hot";
    c_retried = Obs.Metrics.counter m "node_invoke_retries_total";
    c_reclaimed = Obs.Metrics.counter m "node_ucs_reclaimed_total";
    c_oom_wakes = Obs.Metrics.counter m "node_oom_wakes_total";
    c_captured = Obs.Metrics.counter m "node_snapshots_captured_total";
    g_free_bytes = Obs.Metrics.gauge m "node_free_bytes";
    g_idle_ucs = Obs.Metrics.gauge m "node_idle_ucs";
    g_snapshots = Obs.Metrics.gauge m "node_fn_snapshots";
  }
  in
  if Int64.compare config.Config.snapshot_cache_bytes 0L > 0 then
    t.store <-
      Some
        (Snapstore.create ~env:node_env
           ~budget_bytes:config.Config.snapshot_cache_bytes
           ~policy:config.Config.snapshot_cache_policy
           ~on_evict:(fun ~fn_id -> Hashtbl.remove t.fn_snapshots fn_id));
  t

let config t = t.cfg
let env t = t.node_env

let free_bytes t = Mem.Frame.free_bytes t.node_env.Osenv.frames

let count_invocation t path runtime =
  Obs.Metrics.inc
    (Obs.Metrics.counter t.node_env.Osenv.metrics
       ~labels:
         [
           ("path", path_label path);
           ("runtime", Unikernel.Image.runtime_name runtime);
         ]
       "node_invocations_total")

let count_error t path =
  Obs.Metrics.inc
    (match path with
    | Cold -> t.c_errors_cold
    | Warm -> t.c_errors_warm
    | Hot -> t.c_errors_hot)

let refresh_gauges t =
  Obs.Metrics.set_gauge t.g_free_bytes (Int64.to_float (free_bytes t));
  Obs.Metrics.set_gauge t.g_idle_ucs (float_of_int t.idle_total);
  Obs.Metrics.set_gauge t.g_snapshots
    (float_of_int (Hashtbl.length t.fn_snapshots))

let base_snapshot t runtime = List.assoc_opt runtime t.bases

let function_snapshot t fn_id = Hashtbl.find_opt t.fn_snapshots fn_id

let snapstore t = t.store

(* The invocation paths' snapshot lookup: when the store is armed it is
   the source of truth (hit/miss counting, recency touch); unarmed, the
   plain mirror read. [function_snapshot] stays a policy-neutral read
   for inspection tools. *)
let lookup_snapshot t fn_id =
  match t.store with
  | Some s -> Snapstore.lookup s fn_id
  | None -> Hashtbl.find_opt t.fn_snapshots fn_id

let snapshot_count t = Hashtbl.length t.fn_snapshots

let snapshot_inventory t =
  (* Sorted by fn_id so consumers (registry repair, the snapshots
     dashboard) see a reproducible inventory. *)
  Det.bindings t.fn_snapshots

(* Keep the snapshot cache within its configured bound: walk the
   insertion order looking for a snapshot that is safe to delete (§6: no
   dependents). Entries whose snapshot is still in use are requeued. *)
let evict_snapshots_if_needed t =
  let attempts = ref (Queue.length t.snap_order) in
  while
    Hashtbl.length t.fn_snapshots >= t.cfg.Config.max_function_snapshots
    && !attempts > 0
  do
    decr attempts;
    match Queue.take_opt t.snap_order with
    | None -> attempts := 0
    | Some fn_id -> (
        match Hashtbl.find_opt t.fn_snapshots fn_id with
        | None -> () (* stale entry *)
        | Some snap ->
            let deleted =
              match t.store with
              | Some s -> Snapstore.forget s ~fn_id snap
              | None -> Snapshot.try_delete ~env:t.node_env snap
            in
            if deleted then Hashtbl.remove t.fn_snapshots fn_id
            else Queue.add fn_id t.snap_order)
  done

let install_snapshot t ~fn_id snap =
  if Hashtbl.mem t.fn_snapshots fn_id then
    ignore (Snapshot.try_delete ~env:t.node_env snap)
  else begin
    evict_snapshots_if_needed t;
    Hashtbl.replace t.fn_snapshots fn_id snap;
    Queue.add fn_id t.snap_order;
    Obs.Metrics.inc t.c_captured;
    (* The store's budget sweep may evict members right here — including,
       under a budget smaller than one snapshot, the one just inserted
       (on_evict keeps the mirror exact either way). *)
    match t.store with
    | Some s -> Snapstore.insert s ~fn_id snap
    | None -> ()
  end

let idle_uc_count t = t.idle_total

let idle_ucs t =
  Det.fold
    (fun _ q acc -> Queue.fold (fun acc uc -> uc :: acc) acc q)
    t.idle []

(* The node's counters live in the registry; [stats] is a view over it
   (summed across the per-runtime labels), not parallel bookkeeping. *)
let stats t =
  let m = t.node_env.Osenv.metrics in
  let inv p =
    Obs.Metrics.sum_counters m ~where:[ ("path", p) ] "node_invocations_total"
  in
  {
    cold = inv "cold";
    warm = inv "warm";
    hot = inv "hot";
    errors = Obs.Metrics.sum_counters m "node_errors_total";
    retries = Obs.Metrics.sum_counters m "node_invoke_retries_total";
    reclaimed_ucs = Obs.Metrics.sum_counters m "node_ucs_reclaimed_total";
    snapshots_captured =
      Obs.Metrics.sum_counters m "node_snapshots_captured_total";
  }

(* {1 Idle-UC cache} *)

let push_idle t fn_id uc =
  if t.cfg.Config.cache_idle_ucs && Uc.status uc = Uc.Running then begin
    Uc.touch_lru uc;
    let q =
      match Hashtbl.find_opt t.idle fn_id with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.replace t.idle fn_id q;
          q
    in
    Queue.add uc q;
    Queue.add (fn_id, uc) t.idle_order;
    t.idle_total <- t.idle_total + 1
  end
  else Uc.destroy uc

let pop_idle t fn_id =
  match Hashtbl.find_opt t.idle fn_id with
  | None -> None
  | Some q ->
      let rec take () =
        match Queue.take_opt q with
        | None -> None
        | Some uc ->
            t.idle_total <- t.idle_total - 1;
            if Uc.status uc = Uc.Running then Some uc
            else begin
              (* Died in the cache (guest OOM): reclaim its frames and
                 snapshot reference on the way past. *)
              Uc.destroy uc;
              take ()
            end
      in
      take ()

let drop_idle t ~fn_id =
  match Hashtbl.find_opt t.idle fn_id with
  | None -> ()
  | Some q ->
      Queue.iter
        (fun uc ->
          Uc.destroy uc;
          t.idle_total <- t.idle_total - 1)
        q;
      Queue.clear q

(* Destroy the oldest idle entry; [true] iff a live UC was reclaimed
   (entries gone stale — taken hot or already destroyed — are skipped). *)
let reclaim_oldest t =
  let fn_id, uc = Queue.take t.idle_order in
  Osenv.burn t.node_env Cost.oom_scan;
  match Hashtbl.find_opt t.idle fn_id with
  (* seusslint: allow physical-eq — queue membership of this exact UC record *)
  | Some q when Queue.fold (fun found u -> found || u == uc) false q ->
      let fresh = Queue.create () in
      (* seusslint: allow physical-eq — removing this exact UC record from the queue *)
      Queue.iter (fun u -> if u != uc then Queue.add u fresh) q;
      Hashtbl.replace t.idle fn_id fresh;
      t.idle_total <- t.idle_total - 1;
      if Uc.status uc = Uc.Running then begin
        Uc.destroy uc;
        Obs.Metrics.inc t.c_reclaimed;
        Osenv.emit t.node_env (Obs.Event.Uc_reclaim { uc_id = Uc.id uc; fn_id });
        true
      end
      else begin
        (* Already dead in the cache: no live UC reclaimed, but its
           resources still need draining. *)
        Uc.destroy uc;
        false
      end
  | _ -> false

(* The paper's trivial OOM daemon: reclaim idle UCs, oldest first, while
   free memory sits below the headroom. *)
let reclaim_idle_ucs t =
  let reclaimed = ref 0 in
  let continue_ () =
    Int64.compare (free_bytes t) t.cfg.Config.oom_headroom_bytes < 0
    && not (Queue.is_empty t.idle_order)
  in
  if continue_ () then begin
    Obs.Metrics.inc t.c_oom_wakes;
    Osenv.emit t.node_env (Obs.Event.Oom_wake { free_bytes = free_bytes t })
  end;
  while continue_ () do
    if reclaim_oldest t then incr reclaimed
  done;
  refresh_gauges t;
  !reclaimed

(* An injected OOM storm: a sudden external allocation spike forces the
   daemon to evict the whole idle-UC cache, not just down to headroom —
   subsequent repeats of the affected functions degrade hot -> warm. *)
let storm_reclaim t =
  let reclaimed = ref 0 in
  if not (Queue.is_empty t.idle_order) then begin
    Obs.Metrics.inc t.c_oom_wakes;
    Osenv.emit t.node_env (Obs.Event.Oom_wake { free_bytes = free_bytes t })
  end;
  while not (Queue.is_empty t.idle_order) do
    if reclaim_oldest t then incr reclaimed
  done;
  refresh_gauges t;
  !reclaimed

(* {1 Node startup: boot, AO, base snapshot capture} *)

let apply_ao t uc =
  let timeout = t.cfg.Config.invoke_timeout in
  match t.cfg.Config.ao with
  | Config.Ao_none ->
      (* Capture right at driver start: no connection has ever touched
         this guest. *)
      `Capture_now
  | (Config.Ao_network | Config.Ao_full) as level ->
      Uc.resume uc;
      if not (Uc.connect uc) then `Failed "AO: cannot connect"
      else begin
        let ao_request cmd label =
          match Uc.request uc cmd ~timeout with
          | Ok (Unikernel.Driver.Ok_reply _) -> Ok ()
          | Ok (Unikernel.Driver.Err_reply m) ->
              Error (Printf.sprintf "AO %s failed: %s" label m)
          | Ok Unikernel.Driver.Pong -> Ok ()
          | Error _ -> Error (Printf.sprintf "AO %s failed" label)
        in
        let result =
          match ao_request Unikernel.Driver.Warm_net "network" with
          | Error _ as e -> e
          | Ok () ->
              if level = Config.Ao_full then
                ao_request Unikernel.Driver.Warm_exec "interpreter"
              else Ok ()
        in
        match result with
        | Error msg -> `Failed msg
        | Ok () -> (
            ignore (Uc.send uc Unikernel.Driver.Checkpoint);
            match Uc.await_breakpoint uc ~timeout with
            | Some "checkpoint" -> `Capture_now
            | Some other -> `Failed ("unexpected breakpoint: " ^ other)
            | None -> `Failed "checkpoint timeout")
      end

let start t =
  List.iter
    (fun image ->
      let uc = Uc.boot t.node_env image in
      match Uc.await_breakpoint uc ~timeout:60.0 with
      | Some "driver-started" -> (
          match apply_ao t uc with
          | `Capture_now ->
              let name =
                Printf.sprintf "%s-base"
                  (Unikernel.Image.runtime_name image.Unikernel.Image.runtime)
              in
              let snap = Uc.capture uc ~env:t.node_env ~name in
              t.bases <- (image.Unikernel.Image.runtime, snap) :: t.bases;
              Uc.resume uc;
              Uc.destroy uc
          | `Failed msg ->
              Uc.destroy uc;
              failwith ("Node.start: " ^ msg))
      | Some other ->
          Uc.destroy uc;
          failwith ("Node.start: unexpected breakpoint " ^ other)
      | None ->
          Uc.destroy uc;
          failwith "Node.start: boot timeout")
    t.cfg.Config.runtimes;
  refresh_gauges t

(* {1 Invocation paths} *)

let now t = Sim.Engine.now t.node_env.Osenv.engine

(* Consult the fault plane at one of this node's injection sites; when
   the site fires, count and emit it so the failure timeline is visible
   in [seussctl events]. No plan installed (or rate 0) => always false,
   with zero PRNG draws. *)
let inject t site detail =
  if Faults.Fault.fire site ~detail then begin
    Obs.Metrics.inc
      (Obs.Metrics.counter t.node_env.Osenv.metrics
         ~labels:[ ("site", Faults.Fault.site_name site) ]
         "node_faults_injected_total");
    Osenv.emit t.node_env
      (Obs.Event.Fault_injected
         { site = Faults.Fault.site_name site; detail });
    true
  end
  else false

let headroom_check t =
  if inject t Faults.Fault.Oom_storm "allocation spike" then
    ignore (storm_reclaim t);
  if Int64.compare (free_bytes t) t.cfg.Config.oom_headroom_bytes < 0 then
    ignore (reclaim_idle_ucs t)

let run_on_uc t ph uc ~args =
  let t0 = now t in
  (* Fault plane: kill the guest just as the request is handed to it —
     the request then fails with a lost connection, exactly what a
     mid-request UC death looks like from the node side. *)
  if inject t Faults.Fault.Uc_kill (Printf.sprintf "uc-%d" (Uc.id uc)) then
    Uc.destroy uc;
  let result =
    match
      Uc.request uc (Unikernel.Driver.Run args)
        ~timeout:t.cfg.Config.invoke_timeout
    with
    | Ok (Unikernel.Driver.Ok_reply result) -> Ok result
    | Ok (Unikernel.Driver.Err_reply msg) -> Error (`Runtime_error msg)
    | Ok Unikernel.Driver.Pong -> Error (`Runtime_error "protocol confusion")
    | Error `Timeout -> Error `Timeout
    | Error (`Closed | `No_connection) -> Error `Timeout
  in
  ph.p_run <- ph.p_run +. (now t -. t0);
  result

let finish t path fn uc result =
  t.last_uc <- Some uc;
  (match result with
  | Ok _ -> push_idle t fn.fn_id uc
  | Error _ ->
      count_error t path;
      Uc.destroy uc);
  result

let warm_invoke t ph fn snap ~args =
  Sim.Trace.mark "node.path warm";
  headroom_check t;
  let t0 = now t in
  match Uc.deploy t.node_env snap with
  | exception Mem.Frame.Out_of_memory ->
      ignore (reclaim_idle_ucs t);
      count_error t Warm;
      Error `Overloaded
  | uc ->
      (* REAP-style warm deploys: replay the snapshot's recorded working
         set before the guest runs, or — on the snapshot's first warm
         invocation — record it for every deploy after. The deploy just
         above has not yielded yet, so the batch install lands before
         the guest's restore writes can fault. *)
      let recording =
        t.cfg.Config.prefault_working_set
        &&
        match Snapshot.working_set snap with
        | Some ws ->
            ignore (Uc.prefault uc ~vpns:ws);
            false
        | None ->
            Uc.start_ws_record uc;
            true
      in
      if not (Uc.connect uc) then begin
        Uc.destroy uc;
        count_error t Warm;
        Error `Timeout
      end
      else begin
        ph.p_deploy <- ph.p_deploy +. (now t -. t0);
        let result = run_on_uc t ph uc ~args in
        if recording then begin
          let ws = Uc.take_ws_record uc in
          if Result.is_ok result && ws <> [] then begin
            Snapshot.record_working_set snap ws;
            Osenv.emit t.node_env
              (Obs.Event.Ws_record
                 { snapshot = snap.Snapshot.name; pages = List.length ws })
          end
        end;
        finish t Warm fn uc result
      end

(* Between the snapshot lookup and [Uc.deploy]'s addref the warm path
   yields (headroom sweep, deploy burn); a concurrent cold path's insert
   could meanwhile evict this very snapshot and deploy would then hit a
   deleted template. Pinning it as a dependent for the duration makes it
   invisible to every eviction sweep. *)
let warm_invoke_pinned t ph fn snap ~args =
  Snapshot.addref snap;
  Osenv.note_pin t.node_env;
  Fun.protect
    ~finally:(fun () ->
      Osenv.note_unpin t.node_env;
      Snapshot.decref snap)
    (fun () -> warm_invoke t ph fn snap ~args)

let cold_invoke t ph fn ~args =
  Sim.Trace.mark "node.path cold";
  match base_snapshot t fn.runtime with
  | None ->
      count_error t Cold;
      Error `No_runtime
  | Some base -> (
      headroom_check t;
      let t0 = now t in
      match Uc.deploy t.node_env base with
      | exception Mem.Frame.Out_of_memory ->
          ignore (reclaim_idle_ucs t);
          count_error t Cold;
          Error `Overloaded
      | uc ->
          if not (Uc.connect uc) then begin
            Uc.destroy uc;
            count_error t Cold;
            Error `Timeout
          end
          else begin
            ph.p_deploy <- ph.p_deploy +. (now t -. t0);
            let t1 = now t in
            if not (Uc.send uc (Unikernel.Driver.Init fn.source)) then begin
              Uc.destroy uc;
              count_error t Cold;
              Error `Timeout
            end
            else begin
              match
                Sim.Trace.span "node.await compile breakpoint" (fun () ->
                    Uc.await_breakpoint uc ~timeout:t.cfg.Config.invoke_timeout)
              with
              | Some "compile-ok" ->
                  (* The guest is parked at the post-compile breakpoint:
                     capture the function snapshot, then resume and run. *)
                  if
                    t.cfg.Config.cache_function_snapshots
                    && not (Hashtbl.mem t.fn_snapshots fn.fn_id)
                  then begin
                    (* Fault plane: a failed capture loses the function
                       snapshot (the invocation itself still succeeds);
                       the next miss pays the cold path again. *)
                    if not (inject t Faults.Fault.Capture_fail fn.fn_id)
                    then begin
                      let snap =
                        Uc.capture uc ~env:t.node_env ~name:("fn-" ^ fn.fn_id)
                      in
                      install_snapshot t ~fn_id:fn.fn_id snap
                    end
                  end;
                  Uc.resume uc;
                  ph.p_import <- ph.p_import +. (now t -. t1);
                  finish t Cold fn uc (run_on_uc t ph uc ~args)
              | Some label
                when String.length label >= 12
                     && String.sub label 0 12 = "compile-err:" ->
                  Uc.resume uc;
                  Uc.destroy uc;
                  count_error t Cold;
                  Error
                    (`Compile_error
                      (String.sub label 12 (String.length label - 12)))
              | Some other ->
                  Uc.destroy uc;
                  count_error t Cold;
                  Error (`Compile_error ("unexpected breakpoint " ^ other))
              | None ->
                  Uc.destroy uc;
                  count_error t Cold;
                  Error `Timeout
            end
          end)

(* A hot UC died out from under the request: retry internally on the
   warm (or cold) path. The invocation keeps its first-attempted [Hot]
   path in the counters — only the separate retry counter moves — and
   the client never sees the intermediate failure. *)
let retry_after_hot_death t ph fn ~args =
  Obs.Metrics.inc t.c_retried;
  Osenv.emit t.node_env (Obs.Event.Invoke_retry { fn_id = fn.fn_id });
  match lookup_snapshot t fn.fn_id with
  | Some snap -> warm_invoke_pinned t ph fn snap ~args
  | None -> cold_invoke t ph fn ~args

let hot_invoke t ph uc fn ~args =
  Sim.Trace.mark "node.path hot";
  let t0 = now t in
  if Uc.connect uc then begin
    ph.p_deploy <- ph.p_deploy +. (now t -. t0);
    match run_on_uc t ph uc ~args with
    | Error _ when Uc.status uc = Uc.Dead ->
        (* The guest died mid-request (not a guest-level error reply):
           fall back rather than surface a transient to the caller. *)
        retry_after_hot_death t ph fn ~args
    | result -> finish t Hot fn uc result
  end
  else begin
    Uc.destroy uc;
    retry_after_hot_death t ph fn ~args
  end

let invoke t fn ~args =
  let t0 = now t in
  (* Sampled trace capture: every n-th invocation records its own
     span tree (the context is process-local, so concurrent unsampled
     invocations are untouched). *)
  t.invoke_seen <- t.invoke_seen + 1;
  let tracing =
    match t.trace_every with
    | Some n when t.invoke_seen mod n = 0 ->
        Some (Sim.Trace.start_ctx t.node_env.Osenv.engine)
    | _ -> None
  in
  t.in_flight <- t.in_flight + 1;
  Osenv.emit t.node_env (Obs.Event.Invoke_start { fn_id = fn.fn_id });
  let ph = { p_deploy = 0.0; p_import = 0.0; p_run = 0.0 } in
  let result, path =
    Sim.Trace.span ("node.invoke " ^ fn.fn_id) (fun () ->
        match pop_idle t fn.fn_id with
        | Some uc ->
            count_invocation t Hot fn.runtime;
            (hot_invoke t ph uc fn ~args, Hot)
        | None -> (
            match lookup_snapshot t fn.fn_id with
            | Some snap ->
                count_invocation t Warm fn.runtime;
                (warm_invoke_pinned t ph fn snap ~args, Warm)
            | None ->
                count_invocation t Cold fn.runtime;
                (cold_invoke t ph fn ~args, Cold)))
  in
  t.in_flight <- t.in_flight - 1;
  (match tracing with
  | None -> ()
  | Some tr ->
      let spans = Sim.Trace.stop_ctx tr in
      if Queue.length t.captured >= capture_limit then
        ignore (Queue.pop t.captured);
      Queue.push { c_fn = fn.fn_id; c_path = path; c_t0 = t0; c_spans = spans }
        t.captured);
  let total = now t -. t0 in
  let service = ph.p_deploy +. ph.p_import +. ph.p_run in
  Osenv.emit t.node_env
    (Obs.Event.Invoke_finish
       {
         fn_id = fn.fn_id;
         path = obs_path path;
         queue = Float.max 0.0 (total -. service);
         deploy = ph.p_deploy;
         import = ph.p_import;
         run = ph.p_run;
         total;
         ok = Result.is_ok result;
       });
  Obs.Metrics.observe
    (Obs.Metrics.histogram t.node_env.Osenv.metrics
       ~labels:[ ("path", path_label path) ]
       "node_invoke_seconds")
    total;
  refresh_gauges t;
  (result, path)

let last_served_uc t = t.last_uc
let in_flight t = t.in_flight
let trace_sampling t = t.trace_every

let captured_traces t =
  List.rev (Queue.fold (fun acc c -> c :: acc) [] t.captured)

(* Orderly teardown, for leak audits: destroy every idle UC, then delete
   function snapshots (their dependents are now zero), then bases. After
   shutdown the node holds no frames — a consistent allocator reports
   [used_frames = 0]. *)
let shutdown t =
  (match t.last_uc with Some uc -> Uc.destroy uc | None -> ());
  t.last_uc <- None;
  (* Destroy in sorted-key order: frees recycle through the allocator's
     free list, so teardown order must not depend on bucket layout. *)
  Det.iter (fun _ q -> Queue.iter Uc.destroy q) t.idle;
  Hashtbl.reset t.idle;
  Queue.clear t.idle_order;
  t.idle_total <- 0;
  (match t.store with
  | Some s -> Snapstore.drain s
  | None ->
      Det.iter
        (fun _ snap -> ignore (Snapshot.try_delete ~env:t.node_env snap))
        t.fn_snapshots);
  Hashtbl.reset t.fn_snapshots;
  Queue.clear t.snap_order;
  List.iter
    (fun (_, base) -> ignore (Snapshot.try_delete ~env:t.node_env base))
    t.bases;
  t.bases <- [];
  refresh_gauges t

(* {1 Ownership census}

   The dynamic half of the seussown static pass: at engine quiescence,
   count every resource the node still holds beyond its deliberate
   caches. The static pass proves each acquire has a release on every
   path; the census checks the same invariant against the runtime
   ground truth — the frame allocator, snapshot dependent counts, the
   UC create/destroy ledger — so a leak the analysis missed (or a
   suppression that lied) still surfaces. *)

type census = {
  leaked_frames : int;
  snapshot_ref_mismatch : int;
  pinned_windows : int;
  leaked_ucs : int;
}

(* Every UC the node knowingly holds and has not released: the idle
   cache plus the last-served UC (which may alias an idle entry, hence
   the id-keyed dedup; dead-but-undrained cache entries count as held —
   the node still owns their release). *)
let accounted_ucs t =
  let seen = Hashtbl.create 64 in
  let add acc uc =
    if Uc.is_released uc || Hashtbl.mem seen (Uc.id uc) then acc
    else begin
      Hashtbl.add seen (Uc.id uc) ();
      uc :: acc
    end
  in
  let acc = List.fold_left add [] (idle_ucs t) in
  match t.last_uc with Some uc -> add acc uc | None -> acc

let census t =
  let env = t.node_env in
  let ucs = accounted_ucs t in
  let snaps =
    List.map snd t.bases @ List.map snd (snapshot_inventory t)
  in
  (* One family listing every live table the node knows about — base
     and function snapshots plus held UC address spaces — so shared
     leaves are counted once and the implied live-frame count is exact.
     Any surplus the allocator reports belongs to a table nobody can
     ever release. *)
  let tables =
    List.map (fun (s : Snapshot.t) -> s.Snapshot.table) snaps
    @ List.map Uc.table ucs
  in
  let implied = Mem.Page_table.expected_refcounts tables in
  let leaked_frames =
    Mem.Frame.used_frames env.Osenv.frames - Hashtbl.length implied
  in
  (* Expected dependents of a snapshot: held UCs deployed from it plus
     child snapshots captured over it (names are unique per node, so
     name equality identifies the snapshot without physical compare). *)
  let expected_deps (s : Snapshot.t) =
    let from_ucs =
      List.length
        (List.filter
           (fun uc ->
             match Uc.source_snapshot uc with
             | Some src -> String.equal src.Snapshot.name s.Snapshot.name
             | None -> false)
           ucs)
    and from_children =
      List.length
        (List.filter
           (fun (c : Snapshot.t) ->
             match c.Snapshot.parent with
             | Some p -> String.equal p.Snapshot.name s.Snapshot.name
             | None -> false)
           snaps)
    in
    from_ucs + from_children
  in
  let snapshot_ref_mismatch =
    List.fold_left
      (fun acc s -> acc + (Snapshot.dependents s - expected_deps s))
      0 snaps
  in
  let leaked_ucs =
    env.Osenv.ucs_created - env.Osenv.ucs_released - List.length ucs
  in
  {
    leaked_frames;
    snapshot_ref_mismatch;
    pinned_windows = env.Osenv.pins;
    leaked_ucs;
  }

let census_clean c =
  c.leaked_frames = 0
  && c.snapshot_ref_mismatch = 0
  && c.pinned_windows = 0
  && c.leaked_ucs = 0

let arm_census ?(name = "node") ?on_leak t =
  let engine = t.node_env.Osenv.engine in
  if Sim.Engine.own_armed engine then
    Sim.Engine.add_census_hook engine (fun () ->
        let c = census t in
        (* Emit only on a nonzero count: a healthy armed run's event
           stream stays byte-identical to an unarmed one (an
           unconditional event could change ring-eviction order). *)
        if not (census_clean c) then begin
          Osenv.emit t.node_env
            (Obs.Event.San_leak
               {
                 node = name;
                 frames = c.leaked_frames;
                 snapshot_refs = c.snapshot_ref_mismatch;
                 pinned = c.pinned_windows;
                 ucs = c.leaked_ucs;
               });
          match on_leak with Some f -> f c | None -> ()
        end)

let deploy_idle t runtime =
  match base_snapshot t runtime with
  | None -> false
  | Some base -> (
      match Uc.deploy t.node_env base with
      | exception Mem.Frame.Out_of_memory -> false
      | uc ->
          if Uc.connect uc then begin
            match Uc.request uc Unikernel.Driver.Ping ~timeout:10.0 with
            | Ok Unikernel.Driver.Pong ->
                push_idle t
                  (Printf.sprintf "idle-%s-%d"
                     (Unikernel.Image.runtime_name runtime)
                     (Uc.id uc))
                  uc;
                true
            | _ ->
                Uc.destroy uc;
                false
          end
          else begin
            Uc.destroy uc;
            false
          end)
