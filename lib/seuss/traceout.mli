(** [Sim.Trace] → Chrome trace-event adapter.

    Owns the engine-time→microsecond mapping (simulated seconds × 1e6)
    and the lane layout: each named trace becomes one Chrome {e process}
    lane, and each simulated pid that recorded spans inside it becomes a
    {e thread} within that lane, so cross-process causality through
    [spawn] reads as parallel tracks in Perfetto. Span/parent ids ride
    in the [args] of every event ([span_id] / [parent_id]).

    Zero-width spans ([Sim.Trace.mark]) export as instant events;
    everything else as complete ("X") events. *)

val span_events :
  ?cat:string -> pid:int -> Sim.Trace.span list -> Obs.Chrome.event list
(** Encode one trace's spans into lane [pid] (category defaults to
    ["sim"]). *)

val chrome : (string * Sim.Trace.span list) list -> Obs.Json.t
(** The full document for a list of labelled traces: process/thread
    metadata plus every span. *)

val chrome_string : (string * Sim.Trace.span list) list -> string
(** File body for [seussctl trace --chrome <file>]. *)
