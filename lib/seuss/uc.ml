type status = Running | Dead

type t = {
  uc_id : int;
  env : Osenv.t;
  image : Unikernel.Image.t;
  space : Mem.Addr_space.t;
  listener : Net.Tcp.listener;
  uc_port : int;
  source : Snapshot.t option;
  breakpoints : string Sim.Channel.t;
  mutable resume_gate : unit Sim.Ivar.t;
  mutable guest : Unikernel.Guest.state option;
  mutable conn : Net.Tcp.conn option;
  mutable st : status;
  mutable released : bool;
  mutable used_at : float;
}

let id t = t.uc_id
let port t = t.uc_port
let status t = t.st
let source_snapshot t = t.source

let guest_state t =
  match t.guest with
  | Some g when t.st = Running -> g
  | _ -> invalid_arg "Uc.guest_state: guest not available"

let hypercalls env t =
  {
    Unikernel.Hypercall.clock_wall = (fun () -> Sim.Engine.now env.Osenv.engine);
    console_write = ignore;
    poll = Sim.Engine.yield;
    net_outbound = (fun url -> Osenv.outbound env url);
    breakpoint =
      (fun label ->
        let gate = Sim.Ivar.create () in
        t.resume_gate <- gate;
        Sim.Channel.send t.breakpoints label;
        Sim.Ivar.read gate);
    halt = (fun _reason -> ());
  }

let guest_env env t =
  {
    Unikernel.Guest.image = t.image;
    space = t.space;
    listener = t.listener;
    hypercalls = hypercalls env t;
    rng = Sim.Prng.split env.Osenv.rng;
    cpu_burn = Osenv.burn env;
  }

let make env ~image ~space ~source =
  let uc_port = Osenv.fresh_port env in
  let listener = Net.Tcp.listener ~port:uc_port in
  let t =
    {
      uc_id = Osenv.fresh_id env;
      env;
      image;
      space;
      listener;
      uc_port;
      source;
      breakpoints = Sim.Channel.create ();
      resume_gate = Sim.Ivar.create ();
      guest = None;
      conn = None;
      st = Running;
      released = false;
      used_at = Sim.Engine.now env.Osenv.engine;
    }
  in
  (* Feed the node's telemetry from the fault handler: counters for
     both fault kinds, an event per COW copy (the snapshot-stack
     signal; zero-fills are boot noise at event granularity). *)
  let cow_faults =
    Obs.Metrics.counter env.Osenv.metrics "mem_cow_faults_total"
  and zero_fills =
    Obs.Metrics.counter env.Osenv.metrics "mem_zero_fills_total"
  in
  Mem.Addr_space.set_fault_hook space (function
    | Mem.Addr_space.Cow_copy ->
        Obs.Metrics.inc cow_faults;
        Osenv.emit env (Obs.Event.Cow_fault { uc_id = t.uc_id })
    | Mem.Addr_space.Zero_fill -> Obs.Metrics.inc zero_fills
    | Mem.Addr_space.No_fault -> ());
  Net.Proxy.register env.Osenv.proxy ~port:uc_port listener;
  Osenv.note_uc_created env;
  t

(* The guest runs as its own simulation process. A guest that exhausts
   node memory mid-write simply halts: the invocation waiting on it
   observes a timeout, the node destroys the UC, memory is reclaimed. *)
let spawn_guest t body =
  (* The guest's serve loop parks awaiting requests for the UC's whole
     lifetime (and stays parked after the UC is reclaimed) — a daemon by
     design, not a stranded waiter. *)
  Sim.Engine.spawn t.env.Osenv.engine
    ~name:(Printf.sprintf "uc-%d-guest" t.uc_id)
    ~daemon:true
    (fun () ->
      try body () with
      | Mem.Frame.Out_of_memory -> t.st <- Dead
      | Invalid_argument _ when t.st = Dead ->
          (* The UC was destroyed out from under the guest (its address
             space is gone); the guest simply stops. *)
          ())

let boot env image =
  Sim.Trace.mark "uc.boot";
  Osenv.burn env Cost.uc_create;
  let space = Mem.Addr_space.create env.Osenv.frames in
  let t = make env ~image ~space ~source:None in
  spawn_guest t (fun () ->
      let genv = guest_env env t in
      let state =
        Unikernel.Guest.boot ~on_ready:(fun s -> t.guest <- Some s) genv
      in
      Unikernel.Guest.serve state);
  t

let deploy env (snap : Snapshot.t) =
  if Snapshot.is_deleted snap then invalid_arg "Uc.deploy: deleted snapshot";
  Sim.Trace.span
    (Printf.sprintf "uc.deploy from '%s'" snap.Snapshot.name)
    (fun () -> Osenv.burn env Cost.deploy_total);
  let space =
    Mem.Addr_space.of_table ~mapped_hint:snap.Snapshot.total_pages
      env.Osenv.frames snap.Snapshot.table
  in
  Snapshot.addref snap;
  let t = make env ~image:snap.Snapshot.image ~space ~source:(Some snap) in
  spawn_guest t (fun () ->
      let genv = guest_env env t in
      let state = Unikernel.Guest.restore genv snap.Snapshot.guest in
      t.guest <- Some state;
      Unikernel.Guest.serve state);
  t

let await_breakpoint t ~timeout = Sim.Channel.recv_timeout t.breakpoints ~timeout

let resume t = Sim.Ivar.fill t.resume_gate ()

let rec connect t = Sim.Trace.span "uc.connect" (fun () -> connect_inner t)
and connect_inner t =
  match t.conn with
  | Some conn when not (Net.Tcp.is_closed conn) -> true
  | _ -> (
      if t.st = Dead then false
      else
        match Net.Proxy.connect t.env.Osenv.proxy ~port:t.uc_port with
        | None -> false
        | Some conn ->
            t.conn <- Some conn;
            true)

let send t cmd =
  match t.conn with
  | Some conn when not (Net.Tcp.is_closed conn) ->
      Net.Tcp.send conn (Unikernel.Driver.encode_command cmd);
      true
  | _ -> false

let rec request t cmd ~timeout =
  let label =
    match cmd with
    | Unikernel.Driver.Run _ -> "uc.request run"
    | Unikernel.Driver.Init _ -> "uc.request init"
    | Unikernel.Driver.Ping -> "uc.request ping"
    | Unikernel.Driver.Warm_net -> "uc.request warm_net"
    | Unikernel.Driver.Warm_exec -> "uc.request warm_exec"
    | Unikernel.Driver.Checkpoint -> "uc.request checkpoint"
  in
  Sim.Trace.span label (fun () -> request_inner t cmd ~timeout)

and request_inner t cmd ~timeout =
  match t.conn with
  | Some conn when not (Net.Tcp.is_closed conn) -> (
      Net.Tcp.send conn (Unikernel.Driver.encode_command cmd);
      match Net.Tcp.recv_timeout conn ~timeout with
      | None -> Error `Timeout
      | Some None -> Error `Closed
      | Some (Some m) -> (
          match Unikernel.Driver.decode_reply m.Net.Tcp.data with
          | Ok reply -> Ok reply
          | Error _ -> Error `Closed))
  | _ -> Error `No_connection

let capture t ~env ~name =
  Sim.Trace.span
    (Printf.sprintf "snapshot.capture '%s'" name)
    (fun () ->
      let snap =
        Snapshot.capture ~env ~name ~parent:t.source ~image:t.image
          ~space:t.space ~guest:(guest_state t)
      in
      Osenv.emit env
        (Obs.Event.Snapshot_capture
           {
             name;
             pages = snap.Snapshot.diff_pages;
             bytes = Snapshot.diff_bytes snap;
           });
      snap)

let start_ws_record t = Mem.Addr_space.start_trace t.space

let take_ws_record t = Mem.Addr_space.take_trace t.space

let prefault t ~vpns =
  (* Install first, bill second: [Addr_space.prefault] never yields, so
     every page is resident before the guest's restore path can run;
     the batch's core time is burned once the pages are in place. *)
  let stats = Mem.Addr_space.prefault t.space ~vpns in
  Osenv.burn t.env (Cost.prefault_time stats);
  let snapshot =
    match t.source with Some s -> s.Snapshot.name | None -> "<boot>"
  in
  Osenv.emit t.env
    (Obs.Event.Ws_prefault
       {
         uc_id = t.uc_id;
         snapshot;
         pages = stats.Mem.Addr_space.requested;
         cow_copied = stats.Mem.Addr_space.prefault_cow_copies;
         zero_filled = stats.Mem.Addr_space.prefault_zero_fills;
       });
  stats

(* Status and resource ownership are separate concerns: a guest that
   dies on its own (OOM mid-write) flips [st] to [Dead] without passing
   through [destroy], so release must key on its own flag or the dead
   UC's frames and snapshot reference leak forever. *)
let destroy t =
  if t.st = Running then begin
    t.st <- Dead;
    Osenv.burn t.env Cost.destroy
  end;
  if not t.released then begin
    t.released <- true;
    Osenv.note_uc_released t.env;
    (match t.conn with Some conn -> Net.Tcp.close conn | None -> ());
    t.conn <- None;
    Net.Proxy.unregister t.env.Osenv.proxy ~port:t.uc_port;
    Mem.Addr_space.release t.space;
    (match t.source with Some snap -> Snapshot.decref snap | None -> ());
    (* The guest process stays parked on a dead listener/connection and
       is collected with the simulation. *)
    t.guest <- None
  end

let private_pages t =
  Mem.Addr_space.lifetime_zero_fills t.space
  + Mem.Addr_space.lifetime_cow_copies t.space

let footprint_bytes t =
  Int64.add
    (Mem.Mconfig.bytes_of_pages (private_pages t))
    (Int64.of_int (Mem.Page_table.structure_bytes (Mem.Addr_space.table t.space)))

let last_used t = t.used_at

let touch_lru t = t.used_at <- Sim.Engine.now t.env.Osenv.engine

let is_released t = t.released
let table t = Mem.Addr_space.table t.space
