let us t = t *. 1e6

let span_events ?(cat = "sim") ~pid spans =
  List.map
    (fun (s : Sim.Trace.span) ->
      let args =
        ("span_id", Obs.Json.Int s.Sim.Trace.id)
        ::
        (match s.Sim.Trace.parent with
        | Some p -> [ ("parent_id", Obs.Json.Int p) ]
        | None -> [])
      in
      if s.Sim.Trace.t_end > s.Sim.Trace.t_start then
        Obs.Chrome.Complete
          {
            name = s.Sim.Trace.name;
            cat;
            ts_us = us s.Sim.Trace.t_start;
            dur_us = us (s.Sim.Trace.t_end -. s.Sim.Trace.t_start);
            pid;
            tid = s.Sim.Trace.pid;
            args;
          }
      else
        Obs.Chrome.Instant
          {
            name = s.Sim.Trace.name;
            cat;
            ts_us = us s.Sim.Trace.t_start;
            pid;
            tid = s.Sim.Trace.pid;
            args;
          })
    spans

let tids spans =
  List.sort_uniq compare (List.map (fun (s : Sim.Trace.span) -> s.Sim.Trace.pid) spans)

let chrome traces =
  let events =
    List.concat
      (List.mapi
         (fun i (label, spans) ->
           (Obs.Chrome.Process_name { pid = i; name = label }
           :: List.map
                (fun tid ->
                  Obs.Chrome.Thread_name
                    { pid = i; tid; name = Printf.sprintf "sim pid %d" tid })
                (tids spans))
           @ span_events ~pid:i spans)
         traces)
  in
  Obs.Chrome.trace events

let chrome_string traces = Obs.Json.to_string (chrome traces)
