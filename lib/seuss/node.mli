(** The SEUSS OS compute node: snapshot caches, idle-UC cache, and the
    cold / warm / hot invocation paths of §4.

    - {b cold}: no snapshot for the function — deploy from the base
      runtime snapshot, import + compile the source, capture the
      function snapshot at the compile breakpoint, then run;
    - {b warm}: deploy from the function snapshot, import arguments, run;
    - {b hot}: reuse an idle UC over its existing connection.

    With {!Config.t.prefault_working_set} on, the warm path records the
    pages demand-faulted by each function snapshot's first invocation
    and batch-installs them (REAP-style) on every later deploy from
    that snapshot, replacing the per-page fault storm with a single
    {!Cost.prefault_time} charge.

    Memory pressure is handled by the paper's "trivial" OOM daemon:
    idle UCs (never snapshots with dependents) are reclaimed, oldest
    first, whenever free memory is below the configured headroom.

    Fault plane: when a {!Faults.Fault.plan} is installed on the engine
    the node consults three injection sites — [Uc_kill] (guest dies just
    as a request is handed to it), [Capture_fail] (a function-snapshot
    capture is lost; the invocation still succeeds), and [Oom_storm]
    (an allocation spike evicts the whole idle-UC cache). All are
    no-draw no-ops when no plan is armed. *)

type t

type fn = {
  fn_id : string;  (** unique per (client, function) — the isolation unit *)
  runtime : Unikernel.Image.runtime;
  source : string;
}

type path = Cold | Warm | Hot

type invoke_error =
  [ `Compile_error of string
  | `Runtime_error of string
  | `Timeout
  | `No_runtime
  | `Overloaded ]

type stats = {
  cold : int;
  warm : int;
  hot : int;
  errors : int;
  retries : int;
      (** internal hot-death retries; these invocations stay counted
          under [hot], so [cold + warm + hot] always equals the number
          of invocations accepted *)
  reclaimed_ucs : int;
  snapshots_captured : int;
}

val create : ?config:Config.t -> ?trace_sample:int -> Osenv.t -> t
(** [trace_sample] arms per-invocation trace capture: every [n]-th
    invocation runs under its own [Sim.Trace] context and the resulting
    span tree is retained (bounded, newest kept) for
    {!captured_traces}. When absent, {!trace_sample_env_var}
    ([SEUSS_TRACE_SAMPLE], spelled ["1/N"] or ["N"]) supplies it.
    Sampling draws nothing from the PRNG (a modulo counter), so an
    unarmed node's outputs are byte-identical to a build without the
    hook. *)

val config : t -> Config.t

val env : t -> Osenv.t

val start : t -> unit
(** Boot one unikernel per configured runtime, apply the configured AO
    level, and capture the base runtime snapshots. Must run inside a
    simulation process; blocks for the boot time (seconds). *)

val invoke : t -> fn -> args:string -> (string, invoke_error) result * path
(** Process one invocation to completion (blocking). The returned path
    tells the caller which case served it (the reported path is the one
    *attempted first*; a hot UC that died mid-request is retried as
    warm/cold internally). *)

val deploy_idle : t -> Unikernel.Image.runtime -> bool
(** Deploy one idle runtime UC from the base snapshot and leave it
    listening (the Table 3 density/creation-rate instance). [false] on
    out-of-memory or a missing runtime. *)

val base_snapshot : t -> Unikernel.Image.runtime -> Snapshot.t option

val function_snapshot : t -> string -> Snapshot.t option
(** Policy-neutral read of the function-snapshot cache — does not count
    a store hit/miss or touch eviction recency. *)

val snapstore : t -> Snapstore.t option
(** The content-addressed byte-budgeted snapshot store, present iff
    {!Config.t.snapshot_cache_bytes} > 0. When armed, the invocation
    paths route function-snapshot lookups through it (hit/miss counting,
    recency), captures insert into it (page dedup + delta accounting +
    budget eviction), and {!shutdown} drains it. Unarmed, every path is
    byte-identical to a build without the store. *)

val install_snapshot : t -> fn_id:string -> Snapshot.t -> unit
(** Adopt an externally-produced snapshot (e.g. fetched from a remote
    node by the DR-SEUSS layer) into the function-snapshot cache. If the
    function already has one, the new snapshot is discarded (deleted if
    nothing depends on it). *)

val snapshot_count : t -> int
(** Function snapshots currently cached. *)

val snapshot_inventory : t -> (string * Snapshot.t) list
(** The cached function snapshots with their ids (insertion order not
    guaranteed); bases via {!base_snapshot}. For inspection tools. *)

val idle_uc_count : t -> int

val idle_ucs : t -> Uc.t list

val free_bytes : t -> int64

val stats : t -> stats

val in_flight : t -> int
(** Invocations currently inside {!invoke} — the sampler's in-flight
    gauge. *)

val last_served_uc : t -> Uc.t option
(** The UC that served the most recent invocation — instrumentation for
    the Table 1 memory-footprint microbenchmark (pages copied per
    invocation type). *)

(** {1 Sampled trace capture} *)

val trace_sample_env_var : string
(** ["SEUSS_TRACE_SAMPLE"]. *)

val trace_sample_of_env : unit -> int option
(** Parse {!trace_sample_env_var}: ["1/N"] or ["N"] gives [Some n]
    (capture every n-th invocation); unset, empty or malformed (with a
    warning) gives [None]. *)

val trace_sampling : t -> int option
(** The sampling interval this node was created with, if armed. *)

type capture = {
  c_fn : string;  (** fn_id of the sampled invocation *)
  c_path : path;
  c_t0 : float;  (** simulated start time *)
  c_spans : Sim.Trace.span list;
}

val captured_traces : t -> capture list
(** Span trees of the sampled invocations, oldest first (at most the
    newest 32 are retained). Render with [Sim.Trace.render] or export
    with {!Traceout.chrome}. *)

(** {1 Ownership census}

    The dynamic half of the [seussown] static pass: where the lint
    proves each acquire is released on every path, the census checks
    the same invariant against the runtime ground truth at engine
    quiescence. Armed via [SEUSS_OWN=1] (or [~own:true] at
    [Sim.Engine.create]); unarmed, {!arm_census} registers nothing and
    every output is byte-identical. *)

type census = {
  leaked_frames : int;
      (** allocator frames live beyond what the node's known tables
          (base + function snapshots, held UC address spaces) imply *)
  snapshot_ref_mismatch : int;
      (** sum over known snapshots of (dependents − accounted
          dependents), accounted = held UCs deployed from it + child
          snapshots *)
  pinned_windows : int;  (** warm-invocation pin windows still open *)
  leaked_ucs : int;
      (** UCs created but neither destroyed nor held in a node cache *)
}

val census : t -> census
(** Count resources held right now beyond the node's deliberate caches.
    All-zero at quiescence on a leak-free node; meaningful only when no
    invocation is in flight. *)

val census_clean : census -> bool

val arm_census : ?name:string -> ?on_leak:(census -> unit) -> t -> unit
(** When the engine's ownership census is armed, register a quiescence
    hook that runs {!census} and — only if some count is nonzero —
    emits an [Obs.Event.San_leak] tagged [name] on the node's log and
    calls [on_leak]. No-op on an unarmed engine. *)

val drop_idle : t -> fn_id:string -> unit
(** Evict the idle UCs of one function (used by experiments to force
    warm paths). *)

val reclaim_idle_ucs : t -> int
(** Force the OOM daemon's sweep: destroy idle UCs (oldest first) until
    free memory exceeds the headroom; returns the number reclaimed. *)

val shutdown : t -> unit
(** Orderly teardown: destroy every idle UC (and the last-served one),
    then delete all function snapshots and base snapshots. Afterwards
    the node holds no frame references — with no other allocator users,
    [Mem.Frame.used_frames] returns to zero. Must run inside a
    simulation process (deletions charge {!Cost.destroy}). *)
