type t = {
  id : int;
  name : string;
  image : Unikernel.Image.t;
  parent : t option;
  table : Mem.Page_table.t;
  guest : Unikernel.Guest.snapshot_state;
  diff_pages : int;
  total_pages : int;
  mutable dependents : int;
  mutable deleted : bool;
  mutable working_set : int array option;
}

let capture ~env ~name ~parent ~image ~space ~guest =
  let diff_pages = Mem.Addr_space.dirty_pages space in
  Osenv.burn env
    (Cost.capture_fixed
    +. (float_of_int diff_pages *. Cost.capture_per_dirty_page));
  let guest_state = Unikernel.Guest.capture guest in
  Mem.Addr_space.freeze space;
  let table = Mem.Page_table.clone_shallow (Mem.Addr_space.table space) in
  (match parent with
  | Some p ->
      if p.deleted then invalid_arg "Snapshot.capture: deleted parent";
      p.dependents <- p.dependents + 1
  | None -> ());
  {
    id = Osenv.fresh_id env;
    name;
    image;
    parent;
    table;
    guest = guest_state;
    diff_pages;
    total_pages = Mem.Addr_space.mapped_pages space;
    dependents = 0;
    deleted = false;
    working_set = None;
  }

let import ~env ~name ~local_base ~remote ~transfer_time =
  if local_base.deleted || remote.deleted then
    invalid_arg "Snapshot.import: deleted snapshot";
  if local_base.image <> remote.image then
    invalid_arg "Snapshot.import: image mismatch";
  if remote.parent = None then
    invalid_arg "Snapshot.import: remote must be a function snapshot";
  (* The diff travels over the wire (the fetching core is free to do
     other work), then each received page is installed locally. *)
  Sim.Engine.sleep transfer_time;
  Osenv.burn env
    (float_of_int remote.diff_pages *. Cost.capture_per_dirty_page);
  let space =
    Mem.Addr_space.of_table ~mapped_hint:local_base.total_pages
      env.Osenv.frames local_base.table
  in
  (* Install the diff into the guest-heap region: fresh private frames
     standing in for the transferred pages. *)
  ignore
    (Mem.Addr_space.write_range space ~vpn:Unikernel.Gconst.heap_base
       ~pages:remote.diff_pages);
  Mem.Addr_space.freeze space;
  let table = Mem.Page_table.clone_shallow (Mem.Addr_space.table space) in
  let total = Mem.Addr_space.mapped_pages space in
  Mem.Addr_space.release space;
  local_base.dependents <- local_base.dependents + 1;
  {
    id = Osenv.fresh_id env;
    name;
    image = remote.image;
    parent = Some local_base;
    table;
    guest = remote.guest;
    diff_pages = remote.diff_pages;
    total_pages = total;
    dependents = 0;
    deleted = false;
    working_set = None;
  }

let check_alive t name =
  if t.deleted then
    invalid_arg (Printf.sprintf "Snapshot.%s: %s is deleted" name t.name)

let addref t =
  check_alive t "addref";
  t.dependents <- t.dependents + 1

let decref t =
  check_alive t "decref";
  if t.dependents <= 0 then invalid_arg "Snapshot.decref: no dependents";
  t.dependents <- t.dependents - 1

let dependents t = t.dependents

(* First writer wins: the working set is recorded once, from the first
   completed invocation, and replayed verbatim ever after (REAP keeps the
   first trace too — stability of serverless working sets is the paper's
   enabling observation). *)
let record_working_set t vpns =
  check_alive t "record_working_set";
  match t.working_set with
  | Some _ -> ()
  | None -> if vpns <> [] then t.working_set <- Some (Array.of_list vpns)

let working_set t =
  check_alive t "working_set";
  match t.working_set with None -> None | Some a -> Some (Array.to_list a)

let is_deleted t = t.deleted

let try_delete ~env t =
  if t.deleted || t.dependents > 0 then false
  else begin
    Osenv.burn env Cost.destroy;
    Mem.Page_table.release t.table;
    (match t.parent with Some p -> decref p | None -> ());
    t.deleted <- true;
    true
  end

let diff_bytes t = Mem.Mconfig.bytes_of_pages t.diff_pages

let total_bytes t = Mem.Mconfig.bytes_of_pages t.total_pages

let rec depth t = match t.parent with None -> 1 | Some p -> 1 + depth p
