(** Immutable execution-state templates and snapshot stacks (§3).

    A snapshot freezes a UC: its page table (entries read-only +
    copy-on-write), its guest resume state, and the diff size — the
    pages dirtied since the UC was created. The [parent] link forms the
    snapshot stack: a function snapshot physically shares every page it
    did not modify with the runtime snapshot below it, which is where
    the 202 MB -> 102 MB example of §3 (and the 54,000-UC density of
    Table 3) comes from.

    Deletion safety (§6): a snapshot is deleted only when nothing
    depends on it — dependents are live UCs deployed from it plus child
    snapshots stacked on it. *)

type t = private {
  id : int;
  name : string;
  image : Unikernel.Image.t;
  parent : t option;
  table : Mem.Page_table.t;
  guest : Unikernel.Guest.snapshot_state;
  diff_pages : int;
  total_pages : int;  (** full mapping, diff + everything shared below *)
  mutable dependents : int;
  mutable deleted : bool;
  mutable working_set : int array option;
      (** vpns demand-faulted by the first completed invocation deployed
          from this snapshot, in fault order (REAP-style record) *)
}

val capture :
  env:Osenv.t ->
  name:string ->
  parent:t option ->
  image:Unikernel.Image.t ->
  space:Mem.Addr_space.t ->
  guest:Unikernel.Guest.state ->
  t
(** Freeze the UC's current state. Must be called from a simulation
    process while the guest is parked at a breakpoint; charges
    [Cost.capture_fixed + diff_pages * Cost.capture_per_dirty_page] of
    core time. The captured UC keeps running afterwards — its next write
    to any frozen page takes a COW fault. Registers the parent
    dependency. *)

val import :
  env:Osenv.t ->
  name:string ->
  local_base:t ->
  remote:t ->
  transfer_time:float ->
  t
(** DR-SEUSS (§9, future work): materialize a remote node's function
    snapshot locally. Snapshots are immutable and location-independent
    ("read-only and deploy-anywhere"), and both nodes share the same
    base runtime image, so only the function diff travels: the local
    copy stacks the remote's diff pages (freshly allocated frames) on
    [local_base], reuses the remote's frozen guest state, and charges
    [transfer_time] of wall-clock (network) plus the per-page install
    cost of core time.
    @raise Invalid_argument if images differ, [remote] is not a depth-2
    function snapshot, or either snapshot is deleted. *)

val addref : t -> unit
(** Record a dependent (a deployed UC or a child snapshot).
    @raise Invalid_argument on a deleted snapshot. *)

val decref : t -> unit

val dependents : t -> int

val record_working_set : t -> int list -> unit
(** Attach the ordered list of vpns demand-faulted during the first
    completed invocation from this snapshot. First record wins — later
    calls (and empty traces) are ignored, mirroring REAP's
    record-once/replay-forever design.
    @raise Invalid_argument on a deleted snapshot. *)

val working_set : t -> int list option
(** The recorded working set, in original fault order, if any. *)

val is_deleted : t -> bool

val try_delete : env:Osenv.t -> t -> bool
(** Delete if nothing depends on it: releases the table's frame
    references and drops the parent dependency (cascading a parent
    delete is the cache's policy decision, not automatic). Returns
    [false] — and does nothing — while dependents remain. *)

val diff_bytes : t -> int64

val total_bytes : t -> int64

val depth : t -> int
(** 1 for a base runtime snapshot, 2 for a function snapshot, ... *)
