(** The resource timeline sampler: a periodic engine-driven daemon that
    snapshots node gauges into the event log as
    [Obs.Event.Timeline_sample] records.

    Off by default; armed per run with [SEUSS_TIMELINE=1]
    ({!maybe_start_from_env}, applied to every harness-built node) or
    explicitly with {!start}. The sampler is a [daemon] process that
    emits one sample per period and {e terminates itself} when the
    engine's pending-event count reaches zero — so it never prevents
    natural quiescence, schedules nothing beyond its own wakeups, and
    draws nothing from the PRNG. Sampling an armed run therefore leaves
    every experiment output byte-identical to a plain run except for
    the extra [timeline_sample] records in the event log. *)

val env_var : string
(** ["SEUSS_TIMELINE"]. *)

val of_env : unit -> bool
(** Whether {!env_var} is set to a recognised "on" value (malformed
    values warn and read as off). *)

val default_period : float
(** 0.1 simulated seconds. *)

val start : ?period:float -> Node.t -> unit
(** Spawn the sampler daemon on the node's engine. Call before (or
    during) the run; the first sample lands one period in.
    @raise Invalid_argument if [period] is not finite and positive. *)

val maybe_start_from_env : ?period:float -> Node.t -> unit
(** {!start} if {!of_env}, else nothing. *)

(** {1 Reading timelines back} *)

type sample = {
  time : float;
  run_queue : int;
  in_flight : int;
  free_bytes : int64;
  idle_ucs : int;
  cached_snapshots : int;
  stuck_waiters : int;
}

val samples_of_records : Obs.Log.record list -> sample list
(** The [Timeline_sample] records of a log, in emission order. *)

val render : sample list -> string
(** ASCII rendering via [Stats.Asciiplot]: a load canvas (run queue,
    in-flight, idle UCs, snapshots) and a free-memory canvas, plus a
    stuck-waiter summary line. *)
