type t = {
  engine : Sim.Engine.t;
  frames : Mem.Frame.t;
  proxy : Net.Proxy.t;
  cpu : Sim.Semaphore.t;
  rng : Sim.Prng.t;
  mutable next_port : int;
  mutable next_id : int;
  hosts : (string, Net.Tcp.listener) Hashtbl.t;
  hosts_cell : Sim.Hb.cell;
  log : Obs.Log.t;
  metrics : Obs.Metrics.t;
  mutable ucs_created : int;
  mutable ucs_released : int;
  mutable pins : int;
}

let create ?budget_bytes ?(cores = 16) ?log_capacity engine =
  let log =
    Obs.Log.create ?capacity:log_capacity
      ~clock:(fun () -> Sim.Engine.now engine)
      ()
  in
  (* When the schedule sanitizer is armed, surface its race reports on
     this node's event log so they land in exported timelines. Reporters
     accumulate on the shared checker, so in a multi-node cluster every
     node's log receives every race — a race is a cross-node fact and no
     single node owns it. *)
  if Sim.Hb.enabled engine then
    Sim.Hb.add_reporter engine (fun (r : Sim.Hb.race) ->
        Obs.Log.emit log
          (Obs.Event.San_race
             {
               cell = r.cell;
               kind = Sim.Hb.kind_name r.kind;
               first_pid = r.first_pid;
               second_pid = r.second_pid;
             }));
  (* Same surfacing for the deadlock sanitizer: each stranded waiter the
     engine finds at quiescence becomes a San_deadlock event on this
     node's log. The reporter runs outside any process (the seussdead
     static pass keeps it block-free). *)
  if Sim.Engine.deadlock_armed engine then
    Sim.Engine.add_deadlock_reporter engine
      (fun (s : Sim.Engine.stranded) ->
        Obs.Log.emit log
          (Obs.Event.San_deadlock
             {
               resource = s.resource;
               proc = s.proc;
               pid = s.pid;
               spawned_at = s.spawned_at;
               waiting_since = s.waiting_since;
               in_cycle = s.in_cycle;
             }));
  let metrics = Obs.Metrics.create () in
  (* Ring eviction is a visible metric, not silent truncation: every
     record the bounded ring drops bumps this counter, which tools like
     [seussctl events] check before presenting the ring as history. *)
  let dropped_events = Obs.Metrics.counter metrics "obs_events_dropped_total" in
  Obs.Log.set_on_drop log (fun () -> Obs.Metrics.inc dropped_events);
  {
    engine;
    frames = Mem.Frame.create ?budget_bytes ();
    proxy = Net.Proxy.create ();
    cpu = Sim.Semaphore.create cores; (* seussdead: lock osenv.cpu *)
    rng = Sim.Prng.split (Sim.Engine.rng engine);
    next_port = 10_000;
    next_id = 0;
    hosts = Hashtbl.create 8;
    hosts_cell = Sim.Hb.cell ~name:"osenv.hosts";
    log;
    metrics;
    ucs_created = 0;
    ucs_released = 0;
    pins = 0;
  }

(* seussheat: cold — ledger bumps sit on UC create/destroy and the pin
   window open/close, not per-invocation dispatch. *)
let note_uc_created t = t.ucs_created <- t.ucs_created + 1
let note_uc_released t = t.ucs_released <- t.ucs_released + 1
let note_pin t = t.pins <- t.pins + 1
let note_unpin t = t.pins <- t.pins - 1

let emit t ev = Obs.Log.emit t.log ev

let burn t seconds =
  if seconds > 0.0 then
    Sim.Semaphore.with_permit t.cpu (fun () -> Sim.Engine.sleep seconds)

let fresh_port t =
  t.next_port <- t.next_port + 1;
  t.next_port

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let register_host t name listener =
  Sim.Hb.write t.hosts_cell;
  Hashtbl.replace t.hosts name listener

let resolve t url =
  Sim.Hb.read t.hosts_cell;
  (* Longest registered prefix wins; among equal-length matches (only
     possible via duplicate registration) the lexicographically smallest
     prefix, so the answer never depends on bucket layout. *)
  Det.fold
    (fun prefix listener best ->
      let plen = String.length prefix in
      let matches =
        String.length url >= plen && String.sub url 0 plen = prefix
      in
      match (matches, best) with
      | false, _ -> best
      | true, Some (len, _) when len >= plen -> best
      | true, _ -> Some (plen, listener))
    t.hosts None
  |> Option.map snd

let outbound t url =
  match resolve t url with
  | None -> None
  | Some listener -> Net.Proxy.outbound t.proxy listener
