(** Shared machinery of one SEUSS OS instance: the simulation engine,
    the physical frame allocator, the per-core network proxy, the core
    pool, name resolution for guest-initiated outbound traffic — and the
    node's telemetry (one structured event log and one metrics registry
    per OS instance, shared by every layer running on it). *)

type t = {
  engine : Sim.Engine.t;
  frames : Mem.Frame.t;
  proxy : Net.Proxy.t;
  cpu : Sim.Semaphore.t;
  rng : Sim.Prng.t;
  mutable next_port : int;
  mutable next_id : int;
  hosts : (string, Net.Tcp.listener) Hashtbl.t;
  hosts_cell : Sim.Hb.cell;
      (** sanitizer-registered shared cell covering [hosts] *)
  log : Obs.Log.t;  (** engine-timestamped structured event log *)
  metrics : Obs.Metrics.t;  (** the node's metrics registry *)
  mutable ucs_created : int;
      (** ownership-census ledger: UCs booted on this OS instance *)
  mutable ucs_released : int;  (** UCs whose [Uc.destroy] released *)
  mutable pins : int;  (** snapshot pin windows currently open *)
}

val create :
  ?budget_bytes:int64 -> ?cores:int -> ?log_capacity:int -> Sim.Engine.t -> t
(** Defaults: the paper's 88 GB / 16-core compute-node VM, event ring of
    {!Obs.Log.default_capacity}. *)

val emit : t -> Obs.Event.t -> unit
(** Emit onto the node's event log (zero simulated-time cost). *)

val burn : t -> float -> unit
(** Occupy one core for the given CPU time (queues when all cores are
    busy). IO waits must NOT go through this. *)

val fresh_port : t -> int

val fresh_id : t -> int

val register_host : t -> string -> Net.Tcp.listener -> unit
(** Bind a URL prefix (e.g. ["http://io-server"]) for guest outbound
    connections. *)

val resolve : t -> string -> Net.Tcp.listener option
(** Longest registered prefix wins. *)

val outbound : t -> string -> Net.Tcp.conn option
(** Resolve + connect through the proxy (the guest's [net_outbound]). *)

(** {1 Ownership-census ledgers}

    Bump-only bookkeeping read by [Node.census] at engine quiescence.
    Maintained unconditionally (an int increment, no allocation) so
    arming [SEUSS_OWN] changes observation, never behaviour. *)

val note_uc_created : t -> unit
val note_uc_released : t -> unit

val note_pin : t -> unit
(** A warm invocation opened its snapshot pin window. *)

val note_unpin : t -> unit
(** ... and closed it ([pins] returns to zero when balanced). *)
