type phase = { rate : float; dwell : float; random_dwell : bool }

type t = Poisson of { rate : float } | Mmpp of { phases : phase array }

let check_rate name r =
  if not (Float.is_finite r) || r <= 0.0 then
    invalid_arg (name ^ ": rate must be finite and positive")

let poisson ~rate =
  check_rate "Arrival.poisson" rate;
  Poisson { rate }

let bursty ~rate ?(burst_ratio = 8.0) ?(duty = 0.1) ?(cycle = 60.0) () =
  check_rate "Arrival.bursty" rate;
  if burst_ratio < 1.0 then
    invalid_arg "Arrival.bursty: burst_ratio must be >= 1";
  if duty <= 0.0 || duty >= 1.0 then
    invalid_arg "Arrival.bursty: duty must be in (0, 1)";
  if cycle <= 0.0 then invalid_arg "Arrival.bursty: cycle must be positive";
  (* Solve base so that duty-weighted mean equals [rate]. *)
  let base = rate /. (1.0 -. duty +. (duty *. burst_ratio)) in
  Mmpp
    {
      phases =
        [|
          { rate = base; dwell = (1.0 -. duty) *. cycle; random_dwell = true };
          { rate = base *. burst_ratio; dwell = duty *. cycle; random_dwell = true };
        |];
    }

let diurnal ~rate ?(amplitude = 0.6) ?(period = 14400.0) ?(phases = 24) () =
  check_rate "Arrival.diurnal" rate;
  if amplitude < 0.0 || amplitude >= 1.0 then
    invalid_arg "Arrival.diurnal: amplitude must be in [0, 1)";
  if period <= 0.0 then invalid_arg "Arrival.diurnal: period must be positive";
  if phases < 2 then invalid_arg "Arrival.diurnal: need at least two phases";
  let k = float_of_int phases in
  Mmpp
    {
      phases =
        Array.init phases (fun i ->
            {
              rate =
                rate
                *. (1.0
                   +. amplitude
                      *. sin (2.0 *. Float.pi *. float_of_int i /. k));
              dwell = period /. k;
              random_dwell = false;
            });
    }

let mean_rate = function
  | Poisson { rate } -> rate
  | Mmpp { phases } ->
      let num = ref 0.0 and den = ref 0.0 in
      Array.iter
        (fun p ->
          num := !num +. (p.rate *. p.dwell);
          den := !den +. p.dwell)
        phases;
      !num /. !den

let describe = function
  | Poisson _ -> "poisson"
  | Mmpp { phases } -> Printf.sprintf "mmpp-%dp" (Array.length phases)

type sim = { arrivals : (float * int) array; dwell_time : float array }

let simulate t rng ~horizon =
  if not (Float.is_finite horizon) || horizon < 0.0 then
    invalid_arg "Arrival.simulate: horizon must be finite and non-negative";
  let phases =
    match t with
    | Poisson { rate } -> [| { rate; dwell = infinity; random_dwell = false } |]
    | Mmpp { phases } -> phases
  in
  let k = Array.length phases in
  let dwell_time = Array.make k 0.0 in
  let acc = ref [] in
  let count = ref 0 in
  let now = ref 0.0 in
  let p = ref 0 in
  let dwell_of ph =
    if ph.dwell = infinity then infinity
    else if ph.random_dwell then Sim.Prng.exponential rng ~mean:ph.dwell
    else ph.dwell
  in
  let phase_end = ref (dwell_of phases.(0)) in
  while !now < horizon do
    let ph = phases.(!p) in
    let boundary = Float.min !phase_end horizon in
    if ph.rate <= 0.0 then begin
      dwell_time.(!p) <- dwell_time.(!p) +. (boundary -. !now);
      now := boundary
    end
    else begin
      let next = !now +. Sim.Prng.exponential rng ~mean:(1.0 /. ph.rate) in
      if next < boundary then begin
        dwell_time.(!p) <- dwell_time.(!p) +. (next -. !now);
        now := next;
        acc := (next, !p) :: !acc;
        incr count
      end
      else begin
        (* Poisson memorylessness makes redrawing at the boundary exact. *)
        dwell_time.(!p) <- dwell_time.(!p) +. (boundary -. !now);
        now := boundary
      end
    end;
    if !now >= !phase_end && !now < horizon then begin
      p := (!p + 1) mod k;
      phase_end := !now +. dwell_of phases.(!p)
    end
  done;
  let arrivals = Array.make !count (0.0, 0) in
  List.iteri (fun i a -> arrivals.(!count - 1 - i) <- a) !acc;
  { arrivals; dwell_time }

let times t rng ~horizon =
  Array.map fst (simulate t rng ~horizon).arrivals
