(** Open-loop inter-arrival processes.

    Two families, both seed-deterministic:

    - {b Poisson}: memoryless arrivals at a constant rate — the classic
      open-loop baseline;
    - {b MMPP} (Markov-modulated Poisson process): arrivals are Poisson
      within a {e phase}, and the active phase — hence the instantaneous
      rate — changes over time. Phases cycle in order; each visit's
      dwell is either exponentially distributed around the phase's mean
      ({!bursty}: random burst onsets) or exactly the mean ({!diurnal}:
      a deterministic rate curve sampled into piecewise-constant
      phases).

    The convenience constructors preserve the requested {e mean} rate,
    so a latency-vs-offered-load sweep can swap arrival shapes without
    moving its x-axis. *)

type phase = {
  rate : float;  (** arrivals/second while this phase is active *)
  dwell : float;  (** mean (or exact) seconds per visit *)
  random_dwell : bool;
      (** exponential dwell around [dwell] (true) or exactly [dwell] *)
}

type t = Poisson of { rate : float } | Mmpp of { phases : phase array }

val poisson : rate:float -> t
(** @raise Invalid_argument unless [rate] is finite and positive. *)

val bursty :
  rate:float -> ?burst_ratio:float -> ?duty:float -> ?cycle:float -> unit -> t
(** Two-phase MMPP with exponential dwells: a base phase and a burst
    phase whose rate is [burst_ratio] (default 8) times the base's. The
    burst phase is active [duty] (default 0.1) of the time on average,
    one base+burst cycle averaging [cycle] (default 60) seconds; rates
    are scaled so the long-run mean equals [rate]. *)

val diurnal :
  rate:float -> ?amplitude:float -> ?period:float -> ?phases:int -> unit -> t
(** Deterministic-dwell MMPP tracing one sine cycle per [period]
    (default 14400 s = 4 simulated hours) across [phases] (default 24)
    equal slices: phase [i]'s rate is
    [rate * (1 + amplitude * sin (2πi/phases))] (default amplitude
    0.6). The slices average back to [rate] exactly. *)

val mean_rate : t -> float
(** Long-run arrivals/second (phase rates weighted by mean dwell). *)

val describe : t -> string
(** ["poisson"], ["mmpp-2p"], ["mmpp-24p"], ... — stable over save/load. *)

type sim = {
  arrivals : (float * int) array;
      (** (time, index of the phase it arrived in), time-sorted *)
  dwell_time : float array;
      (** total simulated seconds spent in each phase over the horizon —
          the denominator for empirical phase-conditional rates *)
}

val simulate : t -> Sim.Prng.t -> horizon:float -> sim
(** Generate every arrival in [\[0, horizon)].
    @raise Invalid_argument if [horizon] is negative or not finite. *)

val times : t -> Sim.Prng.t -> horizon:float -> float array
(** Just the arrival instants of {!simulate}. *)
