(** The trace model: a materialized open-loop workload.

    A trace is the full arrival schedule of one run — every invocation's
    instant and function rank — synthesized from a {!Zipf} popularity
    model and an {!Arrival} process, or loaded from JSONL. Synthesis is
    a pure function of its parameters (two private PRNG streams split
    from the seed: one for arrivals, one for popularity), so equal seeds
    give byte-identical traces and the whole load plane is replayable
    from a one-line header. *)

type event = { at : float; fn : int }

type t = {
  functions : int;
  alpha : float;
  horizon : float;  (** seconds of simulated arrivals *)
  arrival : string;  (** {!Arrival.describe} of the generating process *)
  rate : float;  (** offered mean arrivals/second *)
  seed : int64;
  events : event array;  (** time-sorted *)
}

val synthesize :
  functions:int -> alpha:float -> arrival:Arrival.t -> horizon:float ->
  seed:int64 -> t
(** @raise Invalid_argument on an empty function set or a negative
    horizon (via {!Zipf.create} / {!Arrival.simulate}). *)

val equal : t -> t -> bool

val to_jsonl : t -> string
(** One header object (schema, parameters, event count), then one
    [{"at":..,"fn":..}] line per event; trailing newline. Canonical:
    equal traces render byte-identically. *)

val of_jsonl : string -> (t, string) result

val save : path:string -> t -> unit

val load : path:string -> (t, string) result
