(** Synthetic MiniJS function corpus for trace-driven load.

    Rank [i] of a trace maps to one deterministic function: an id, a
    MiniJS source whose size follows the function's {e import profile}
    (the AST node count drives the simulated import/compile cost and the
    pages a compilation dirties, so bigger profiles genuinely cost more
    on the SEUSS cold path), and an equivalent CPU cost for backends
    that execute modeled actions instead of source. The profile mix is a
    fixed 70/25/5 split of small/medium/large by index, so any
    contiguous rank range sees all three. *)

type profile = Small | Medium | Large

val profile_of_index : int -> profile

val profile_name : profile -> string

val fn_id : int -> string
(** ["zf-<i>"] — stable across runs, distinct from the closed-loop
    experiments' ["fn-<i>"] namespace. *)

val work_ms : int -> float
(** Modeled handler CPU time: 0 / 0.2 / 1.0 ms by profile — what the
    container baselines charge in place of interpreting the source. *)

val source : int -> string
(** The function's MiniJS source: [profile]-many helper definitions (the
    import payload) plus a [main] that exercises them and burns
    {!work_ms}. *)
