type profile = Small | Medium | Large

(* 70/25/5 by low-order index digits: popularity rank and import size
   stay independent, so hot functions come in all three sizes. *)
let profile_of_index i =
  match abs i mod 20 with
  | 19 -> Large
  | 14 | 15 | 16 | 17 | 18 -> Medium
  | _ -> Small

let profile_name = function
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

let fn_id i = Printf.sprintf "zf-%d" i

let work_ms i =
  match profile_of_index i with Small -> 0.0 | Medium -> 0.2 | Large -> 1.0

let helpers_of = function Small -> 0 | Medium -> 6 | Large -> 24

let source i =
  let p = profile_of_index i in
  let helpers = helpers_of p in
  let buf = Buffer.create (256 + (96 * helpers)) in
  for h = 0 to helpers - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "function h%d_%d(x) { let y = (x * %d + %d) %% 9973; return y + %d; }\n"
         h i (h + 2) ((i + h) mod 251) (h mod 7))
  done;
  Buffer.add_string buf "function main(args) {\n";
  if helpers = 0 then
    Buffer.add_string buf (Printf.sprintf "  return {fn: %d};\n" i)
  else begin
    Buffer.add_string buf (Printf.sprintf "  let v = %d;\n" (i mod 1009));
    for h = 0 to helpers - 1 do
      Buffer.add_string buf (Printf.sprintf "  v = h%d_%d(v);\n" h i)
    done;
    Buffer.add_string buf (Printf.sprintf "  work(%.3f);\n" (work_ms i));
    Buffer.add_string buf (Printf.sprintf "  return {fn: %d, v: v};\n" i)
  end;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
