type event = { at : float; fn : int }

type t = {
  functions : int;
  alpha : float;
  horizon : float;
  arrival : string;
  rate : float;
  seed : int64;
  events : event array;
}

(* Arrivals and popularity draw from separate streams split off the
   seed, so adding a function to the set cannot shift arrival times. *)
let synthesize ~functions ~alpha ~arrival ~horizon ~seed =
  let root = Sim.Prng.create seed in
  let arrival_rng = Sim.Prng.split root in
  let pop_rng = Sim.Prng.split root in
  let zipf = Zipf.create ~alpha ~n:functions in
  let times = Arrival.times arrival ~horizon arrival_rng in
  {
    functions;
    alpha;
    horizon;
    arrival = Arrival.describe arrival;
    rate = Arrival.mean_rate arrival;
    seed;
    events =
      Array.map (fun at -> { at; fn = Zipf.sample zipf pop_rng }) times;
  }

let equal a b =
  a.functions = b.functions
  && a.alpha = b.alpha
  && a.horizon = b.horizon
  && String.equal a.arrival b.arrival
  && a.rate = b.rate
  && Int64.equal a.seed b.seed
  && Array.length a.events = Array.length b.events
  && Array.for_all2 (fun x y -> x.at = y.at && x.fn = y.fn) a.events b.events

let schema = "seuss-load-trace/1"

let header t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("functions", Obs.Json.Int t.functions);
      ("alpha", Obs.Json.Float t.alpha);
      ("horizon", Obs.Json.Float t.horizon);
      ("arrival", Obs.Json.String t.arrival);
      ("rate", Obs.Json.Float t.rate);
      ("seed", Obs.Json.String (Int64.to_string t.seed));
      ("events", Obs.Json.Int (Array.length t.events));
    ]

let to_jsonl t =
  let buf = Buffer.create (64 * (Array.length t.events + 1)) in
  Buffer.add_string buf (Obs.Json.to_string (header t));
  Buffer.add_char buf '\n';
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("at", Obs.Json.Float e.at); ("fn", Obs.Json.Int e.fn) ]));
      Buffer.add_char buf '\n')
    t.events;
  Buffer.contents buf

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Obs.Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "trace header: missing or bad %S" name)

let of_jsonl s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "trace: empty document"
  | hd :: rest ->
      let* h =
        Result.map_error (fun e -> "trace header: " ^ e) (Obs.Json.of_string hd)
      in
      let* sch = field "schema" Obs.Json.to_str h in
      if not (String.equal sch schema) then
        Error (Printf.sprintf "trace: unknown schema %S" sch)
      else
        let* functions = field "functions" Obs.Json.to_int h in
        let* alpha = field "alpha" Obs.Json.to_float h in
        let* horizon = field "horizon" Obs.Json.to_float h in
        let* arrival = field "arrival" Obs.Json.to_str h in
        let* rate = field "rate" Obs.Json.to_float h in
        let* seed_s = field "seed" Obs.Json.to_str h in
        let* seed =
          match Int64.of_string_opt seed_s with
          | Some v -> Ok v
          | None -> Error "trace header: seed is not an int64"
        in
        let* count = field "events" Obs.Json.to_int h in
        if count <> List.length rest then
          Error
            (Printf.sprintf "trace: header promises %d events, found %d" count
               (List.length rest))
        else
          let events = Array.make count { at = 0.0; fn = 0 } in
          let rec fill i = function
            | [] -> Ok ()
            | line :: rest -> (
                match Obs.Json.of_string line with
                | Error e -> Error (Printf.sprintf "trace event %d: %s" i e)
                | Ok j ->
                    let* at = field "at" Obs.Json.to_float j in
                    let* fn = field "fn" Obs.Json.to_int j in
                    if fn < 0 || fn >= functions then
                      Error
                        (Printf.sprintf "trace event %d: fn %d out of range" i fn)
                    else begin
                      events.(i) <- { at; fn };
                      fill (i + 1) rest
                    end)
          in
          let* () = fill 0 rest in
          Ok { functions; alpha; horizon; arrival; rate; seed; events }

let save ~path t =
  let oc = open_out path in
  output_string oc (to_jsonl t);
  close_out oc

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      of_jsonl body
