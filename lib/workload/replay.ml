type result = {
  invocations : int;
  ok : int;
  errors : int;
  latencies : Stats.Summary.t;
  makespan : float;
  achieved_rps : float;
  max_in_flight : int;
}

let run ~invoke (trace : Trace.t) =
  let engine = Sim.Engine.self () in
  let total = Array.length trace.Trace.events in
  let latencies = Stats.Summary.create () in
  if total = 0 then
    {
      invocations = 0;
      ok = 0;
      errors = 0;
      latencies;
      makespan = 0.0;
      achieved_rps = 0.0;
      max_in_flight = 0;
    }
  else begin
    let t0 = Sim.Engine.now engine in
    let ok = ref 0 and errors = ref 0 and completed = ref 0 in
    let in_flight = ref 0 and max_in_flight = ref 0 in
    let last_done = ref t0 in
    let all_done = Sim.Ivar.create () in
    let fire (e : Trace.event) =
      incr in_flight;
      if !in_flight > !max_in_flight then max_in_flight := !in_flight;
      let sent = Sim.Engine.now engine in
      (match invoke ~fn:e.Trace.fn with
      | Ok () -> incr ok
      | Error _ -> incr errors);
      Stats.Summary.add latencies (Sim.Engine.now engine -. sent);
      decr in_flight;
      incr completed;
      last_done := Sim.Engine.now engine;
      if !completed = total then Sim.Ivar.fill all_done ()
    in
    Array.iteri
      (fun i e ->
        let due = t0 +. e.Trace.at in
        let wait = due -. Sim.Engine.now engine in
        if wait > 0.0 then Sim.Engine.sleep wait;
        Sim.Engine.spawn engine
          ~name:(Printf.sprintf "req-%d" i)
          (fun () -> fire e))
      trace.Trace.events;
    Sim.Ivar.read all_done;
    let makespan = !last_done -. (t0 +. trace.Trace.events.(0).Trace.at) in
    {
      invocations = total;
      ok = !ok;
      errors = !errors;
      latencies;
      makespan;
      achieved_rps =
        (if makespan > 0.0 then float_of_int !ok /. makespan else 0.0);
      max_in_flight = !max_in_flight;
    }
  end
