(** Zipf(α) function-popularity model.

    Production FaaS traces are dominated by a small set of hot functions
    with a long cold tail (the vHive/Azure trace characterization): rank
    [r]'s invocation probability is proportional to [1/(r+1)^α]. [α = 0]
    degenerates to uniform; larger [α] concentrates load on the head.
    Sampling is a binary search over the precomputed CDF, drawing exactly
    one [Sim.Prng.float] per sample, so traces are seed-deterministic. *)

type t

val create : alpha:float -> n:int -> t
(** [create ~alpha ~n] is a popularity model over function ranks
    [0 .. n-1].
    @raise Invalid_argument if [n < 1] or [alpha] is negative or not
    finite. *)

val n : t -> int

val alpha : t -> float

val weight : t -> int -> float
(** [weight t r] is the normalized probability of rank [r].
    @raise Invalid_argument if [r] is out of range. *)

val sample : t -> Sim.Prng.t -> int
(** One rank draw (one PRNG float). *)
