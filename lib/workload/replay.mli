(** Open-loop trace replay through the simulation engine.

    Closed-loop drivers ({!Platform.Loadgen}-style) hide queueing: a
    slow server slows the clients down. Open-loop replay does not — a
    dispatcher fires each trace event at its scheduled instant
    regardless of how many earlier invocations are still in flight, so
    saturation shows up as the backlog and tail growth it causes in
    production rather than as reduced offered load. Must be called from
    inside a running simulation process; returns once every invocation
    has completed (the run extends past the trace horizon while the
    backlog drains). *)

type result = {
  invocations : int;
  ok : int;
  errors : int;
  latencies : Stats.Summary.t;  (** arrival-to-completion, per invocation *)
  makespan : float;  (** first arrival to last completion *)
  achieved_rps : float;  (** successful completions over the makespan *)
  max_in_flight : int;
      (** peak concurrent invocations — the open-loop backlog depth *)
}

val run : invoke:(fn:int -> (unit, string) Stdlib.result) -> Trace.t -> result
(** [invoke] is called in a fresh simulation process per trace event
    and may block; its error string is counted, not propagated. *)
