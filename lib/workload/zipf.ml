type t = { alpha : float; cdf : float array; total : float }

let create ~alpha ~n =
  if n < 1 then invalid_arg "Zipf.create: need at least one function";
  if not (Float.is_finite alpha) || alpha < 0.0 then
    invalid_arg "Zipf.create: alpha must be finite and non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) alpha);
    cdf.(r) <- !acc
  done;
  { alpha; cdf; total = !acc }

let n t = Array.length t.cdf

let alpha t = t.alpha

let weight t r =
  if r < 0 || r >= Array.length t.cdf then invalid_arg "Zipf.weight: rank out of range";
  let below = if r = 0 then 0.0 else t.cdf.(r - 1) in
  (t.cdf.(r) -. below) /. t.total

let sample t rng =
  let u = Sim.Prng.float rng *. t.total in
  (* First rank whose cumulative weight exceeds the draw. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
