type backend =
  | Seuss_backend of Seuss.Shim.t
  | Linux_backend of Baselines.Linux_node.t
  | Pool_backend of Baselines.Pool_node.t

type fn_spec = { fn_id : string; action : Baselines.Backend_intf.action }

type t = {
  backend : backend;
  pipeline : Sim.Semaphore.t;
  mutable count : int;
}

let control_plane_overhead = 6.5e-3

let create _engine backend =
  (* seussdead: lock controller.pipeline *)
  { backend; pipeline = Sim.Semaphore.create 1; count = 0 }

let backend t = t.backend

let control_plane t =
  Sim.Semaphore.with_permit t.pipeline (fun () ->
      Sim.Engine.sleep control_plane_overhead)

let invoke_custom t ~fn_id ~action ~source =
  t.count <- t.count + 1;
  control_plane t;
  match t.backend with
  | Seuss_backend shim -> (
      let fn =
        { Seuss.Node.fn_id; runtime = Unikernel.Image.Node; source }
      in
      match Seuss.Shim.invoke shim fn ~args:Workloads.args_literal with
      | Ok _, _ -> Ok ()
      | Error `Timeout, _ -> Error "timeout"
      | Error `Overloaded, _ -> Error "overloaded"
      | Error `No_runtime, _ -> Error "no runtime"
      | Error (`Compile_error m), _ -> Error ("compile: " ^ m)
      | Error (`Runtime_error m), _ -> Error ("runtime: " ^ m))
  | Linux_backend node -> (
      let fn = { Baselines.Linux_node.fn_id; action } in
      match Baselines.Linux_node.invoke node fn with
      | Ok (), _ -> Ok ()
      | Error `Timeout, _ -> Error "timeout"
      | Error `Connection_failed, _ -> Error "connection failed"
      | Error `Overloaded, _ -> Error "overloaded")
  | Pool_backend node -> (
      match Baselines.Pool_node.invoke node ~fn_id ~action with
      | Ok () -> Ok ()
      | Error `Overloaded -> Error "overloaded")

let invoke t spec =
  invoke_custom t ~fn_id:spec.fn_id ~action:spec.action
    ~source:(Workloads.source_of_action spec.action)

let requests t = t.count
