(** The OpenWhisk control plane, reduced to its performance-relevant
    behaviour.

    Every request passes through the API gateway, Kafka bus, controller
    scheduling and result persistence; on the paper's two-machine
    deployment this pipeline saturates in the low hundreds of requests
    per second regardless of backend. We model it as a serialized
    per-request overhead — which is also what makes Linux ~21% faster
    than SEUSS at small set sizes in Figure 4: SEUSS requests
    additionally pass through the shim's serialized connection. *)

type backend =
  | Seuss_backend of Seuss.Shim.t
  | Linux_backend of Baselines.Linux_node.t
  | Pool_backend of Baselines.Pool_node.t

type fn_spec = { fn_id : string; action : Baselines.Backend_intf.action }

type t

val create : Sim.Engine.t -> backend -> t

val backend : t -> backend

val invoke : t -> fn_spec -> (unit, string) result
(** Blocking end-to-end invocation; [Error] carries a reason label
    (["timeout"], ["overloaded"], ...). *)

val invoke_custom :
  t ->
  fn_id:string ->
  action:Baselines.Backend_intf.action ->
  source:string ->
  (unit, string) result
(** Like {!invoke} but with an explicit MiniJS [source] for the SEUSS
    backend (container backends run [action] directly; SEUSS compiles
    and runs [source]). The workload plane uses this to give each
    synthetic function a distinct import profile. *)

val requests : t -> int

val control_plane_overhead : float
(** Serialized control-plane service time per request (6.5 ms),
    calibrated so the hot-path plateau lands near the paper's Figure 4:
    ~154 req/s for Linux and ~128 req/s for SEUSS (shim-bound). *)
