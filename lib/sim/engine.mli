(** Deterministic discrete-event simulation engine.

    The engine replaces the paper's physical 16-core testbed: simulated time
    advances only when events fire, so latency, throughput and contention are
    exact functions of the modeled costs rather than of the host machine.

    Processes are cooperative coroutines built on OCaml 5 effect handlers.
    Inside a process, {!sleep} advances simulated time and blocking
    primitives ({!Ivar}, {!Semaphore}, {!Channel}) suspend via {!suspend}.
    Events at equal timestamps fire in FIFO order (a monotonic sequence
    number breaks ties), which makes whole-experiment runs reproducible.
    The schedule sanitizer ([tie_seed] below, plus the {!Hb} checker)
    deliberately perturbs that tie order to flush out code that silently
    depends on it. *)

type t

val create :
  ?seed:int64 -> ?tie_seed:int64 -> ?deadlock:bool -> ?own:bool -> unit -> t
(** [create ?seed ()] is a fresh engine at time [0.0]. [seed] (default
    [1L]) initialises the engine's PRNG, from which experiments derive all
    randomness.

    [deadlock] arms the deadlock sanitizer: blocking primitives register
    their parked waiters with the engine, and at natural quiescence the
    wait-for graph is walked — every stranded waiter (and every daemon
    on a wait cycle) is handed to the {!add_deadlock_reporter}
    callbacks. When [deadlock] is absent, the [SEUSS_DEADLOCK]
    environment variable supplies it ([1]/[true]/[yes]/[on]). An armed
    engine whose run strands nobody makes no extra PRNG draws, schedules
    nothing extra, and prints nothing, so its outputs stay
    byte-identical to an unarmed run.

    [own] arms the ownership census: callbacks registered with
    {!add_census_hook} run once at natural quiescence (after the
    stranded-waiter report) so each node can count resources still held
    — leaked frames, snapshot references, pinned snapshots, undestroyed
    UCs. When [own] is absent, the [SEUSS_OWN] environment variable
    supplies it ([1]/[true]/[yes]/[on]). Unarmed, nothing registers and
    outputs stay byte-identical to a build without the hook.

    [tie_seed] arms the schedule sanitizer's tie shuffler: events at
    equal timestamps fire in a seeded-random order instead of FIFO
    (order across distinct timestamps is untouched). Experiments that
    are honestly deterministic produce byte-identical outputs under any
    [tie_seed]; a divergence pinpoints latent dependence on same-time
    event order. When [tie_seed] is absent, the [SEUSS_SHUFFLE_SEED]
    environment variable supplies it, so released binaries can be swept
    without code changes (the unit-test FIFO contract assumes the
    variable is unset under [dune runtest]). Unarmed engines draw
    nothing from the shuffle stream and keep exact FIFO tie-breaking. *)

val tie_shuffling : t -> bool
(** Whether the tie shuffler is armed on this engine. *)

val shuffle_env_var : string
(** ["SEUSS_SHUFFLE_SEED"]. *)

val now : t -> float
(** Current simulated time, in seconds. *)

val rng : t -> Prng.t

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs callback [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val spawn : t -> ?name:string -> ?daemon:bool -> (unit -> unit) -> unit
(** [spawn t f] starts process [f] at the current time. [f] may use
    {!sleep} and the blocking primitives. An exception escaping [f] aborts
    the whole simulation run ([name] is reported for diagnosis).

    [daemon] (default [false]) marks a process that is *expected* to
    park forever — an accept loop, a refill loop. Daemons are excluded
    from {!stuck_waiters} and from the deadlock report unless they sit
    on an actual wait cycle. *)

val spawn_supervised :
  t ->
  ?name:string ->
  ?daemon:bool ->
  ?on_crash:(string -> exn -> unit) ->
  (unit -> unit) ->
  unit
(** Like {!spawn}, but an exception escaping [f] — including an injected
    crash from the fault plane — kills only this process: the failure is
    recorded in {!failures}, [on_crash] (default: nothing) is notified,
    and the run continues. The supervision survives suspensions: a crash
    after any number of {!sleep}s or {!suspend}s is still contained. *)

val failures : t -> (string * exn) list
(** Supervised processes that died so far, oldest first, with the
    exception that killed each. *)

val run : ?until:float -> t -> unit
(** [run t] executes events in timestamp order until the queue drains, or
    until simulated time would exceed [until] (remaining events are left
    queued). Re-entrant calls are rejected. *)

val events_executed : t -> int
(** Total events fired so far, for tests and sanity checks. *)

val pending : t -> int
(** Events currently queued in the heap. Inside a running process this
    counts everyone else's scheduled work — a periodic daemon can use
    [pending t = 0] as its termination signal: nothing else will ever
    run, so sleeping again would only stretch the simulation. *)

(** {1 Engine self-profiling}

    Always-on counters, maintained with integer compares only: no
    allocation, no PRNG draws, no schedule effect. They feed the
    committed [BENCH_engine.json] baseline. *)

type perf = {
  dispatched : int;  (** events fired (heap pops) — {!events_executed} *)
  scheduled : int;  (** events ever queued (heap pushes) *)
  max_heap : int;  (** event-heap high-water mark *)
}

val perf : t -> perf

exception Process_failure of string * exn
(** Raised by {!run} when a spawned process raises: carries the process
    name and the original exception. *)

(** {1 Within a running process} *)

val self : unit -> t
(** The engine executing the current event.
    @raise Invalid_argument outside of a run. *)

val self_opt : unit -> t option
(** [self ()] without the exception — [None] outside of a run, so
    always-on instrumentation can degrade to a no-op. *)

(** {1 Process-local storage}

    One universal slot per process. A value set while a process runs is
    preserved across {!sleep} / {!suspend} and inherited by processes it
    {!spawn}s; callbacks registered with plain {!schedule} start with an
    empty slot. This is the substrate for per-process trace contexts
    ({!Trace}): two in-flight operations each carry their own context
    instead of sharing an engine-global one. *)

type local = exn
(** The slot is untyped; clients embed their state with an extensible
    [exception] constructor (the standard universal-type idiom), which
    keeps the engine independent of what it carries. *)

val get_local : t -> local option
(** The slot of the currently-dispatching process. *)

val set_local : t -> local option -> unit
(** Overwrite the current process's slot (takes effect for the rest of
    this process's lifetime, including after suspensions). *)

val set_local_fork : t -> (local option -> local option) option -> unit
(** Install a fork hook for the primary slot, mirroring
    {!set_san_fork}: when present, a spawned child's initial slot is
    [fork parent_slot], computed at [spawn] time. {!Trace} uses this to
    give every process its own span stack while capturing the parent
    span open at the spawn — the cross-process causal link. [None]
    (default) shares the parent's value verbatim. *)

(** {1 Sanitizer process slot}

    A second process-local slot, reserved for the happens-before
    sanitizer ({!Hb}) so it never competes with trace contexts for
    {!get_local}. It behaves like the primary slot (preserved across
    {!sleep}/{!suspend}, cleared for plain {!schedule} callbacks) except
    at {!spawn}: if a fork hook is installed the child's initial slot is
    [fork parent_slot] — computed when [spawn] is called — letting the
    sanitizer give every process its own identity while recording the
    spawn ordering edge. *)

val get_san_local : t -> local option

val set_san_local : t -> local option -> unit

val set_san_fork : t -> (local option -> local option) option -> unit

(** {1 Sanitizer engine slot}

    Engine-owned slot for the happens-before checker's per-engine state,
    using the same universal-type embedding as {!fault_plan}. Empty by
    default; an engine with no checker installed makes no extra PRNG
    draws and schedules nothing extra, so its event stream is
    bit-identical to an unsanitized build. *)

val san_state : t -> local option

val set_san_state : t -> local option -> unit

(** {1 Fault-plan slot}

    One engine-owned slot for the fault-injection plan (see the [faults]
    library), using the same universal-type embedding as {!local}. The
    engine never interprets the value; it only carries it so injection
    sites across the stack can reach the plan of the running simulation
    without a dependency cycle. Empty by default: a simulation with no
    installed plan makes no PRNG draws for fault decisions, so its event
    stream is bit-identical to a build without the fault plane. *)

val fault_plan : t -> local option

val set_fault_plan : t -> local option -> unit

val sleep : float -> unit
(** Suspend the current process for a simulated duration (>= 0). *)

val yield : unit -> unit
(** [yield ()] is [sleep 0.]: lets other events at this timestamp run. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the current process. [register resume] is
    called immediately with a one-shot [resume] function; calling
    [resume ()] re-schedules the process at the then-current time. This is
    the primitive from which all blocking structures are built. *)

(** {1 Deadlock sanitizer}

    The dynamic cross-check of the static [seussdead] pass. Blocking
    primitives bracket every park with {!wait_begin} / {!wait_end};
    the engine counts parked processes always (so {!stuck_waiters} is
    meaningful even with the detector off) and, when armed
    ([?deadlock] at {!create} or [SEUSS_DEADLOCK=1]), keeps a wait
    table it walks at natural quiescence: a run that ends with parked
    non-daemon processes — or daemons on a wait cycle — leaked them,
    whether by lost wakeup (a forgotten [Ivar.fill]) or by genuine
    deadlock (a lock cycle). *)

val deadlock_env_var : string
(** ["SEUSS_DEADLOCK"]. *)

val deadlock_armed : t -> bool

val stuck_waiters : t -> int
(** Non-daemon processes currently parked in a blocking primitive.
    After {!run} returns having drained its queue, a nonzero count
    means the simulation quiesced with live processes stranded — a
    silent-quiescence bug even when the detector is off. *)

type stranded = {
  resource : string;  (** e.g. ["semaphore#3"], ["ivar#12"] *)
  proc : string;  (** process name at {!spawn} *)
  pid : int;
  spawned_at : float;  (** simulated time the process started *)
  waiting_since : float;  (** simulated time it parked *)
  holders : int list;  (** pids holding the resource, when known *)
  in_cycle : bool;  (** sits on a wait-for cycle (true deadlock) *)
}

val stranded_waiters : t -> stranded list
(** The stranded-waiter report, sorted by park order: every parked
    non-daemon waiter plus every daemon on a wait-for cycle. [[]] when
    the detector is unarmed (use {!stuck_waiters} for the raw count). *)

val add_deadlock_reporter : t -> (stranded -> unit) -> unit
(** Register a callback invoked once per stranded waiter when {!run}
    reaches natural quiescence with the detector armed. Reporters run
    outside any process — they must not block (the [seussdead] static
    pass enforces this). *)

(** {1 Ownership census}

    The dynamic half of the [seussown] static pass: with the census
    armed ([?own] at {!create} or [SEUSS_OWN=1]), hooks registered via
    {!add_census_hook} run once when {!run} reaches natural quiescence,
    after the stranded-waiter report. Each node registers a hook that
    counts the resources still held beyond its caches — the runtime
    ground truth for the statically-proven acquire/release pairing. *)

val own_env_var : string
(** ["SEUSS_OWN"]. *)

val own_of_env : unit -> bool
(** Parse {!own_env_var}: [1]/[true]/[yes]/[on] arms, [0]/unset/empty
    disarms, malformed warns and disarms. *)

val own_armed : t -> bool

val add_census_hook : t -> (unit -> unit) -> unit
(** Register a quiescence census hook (registration order preserved).
    Hooks run outside any process — they must not block. Never invoked
    when the census is unarmed. *)

val current_pid : t -> int
(** Pid of the currently-dispatching process, [0] outside one. *)

val fresh_resource : t -> string -> string
(** [fresh_resource t kind] is a unique display name ["kind#N"] for a
    blocking resource, assigned on first wait so unarmed runs never
    pay for naming. *)

val wait_begin : t -> resource:(unit -> string) -> holders:(unit -> int list) -> int
(** Called by a blocking primitive as the current process parks.
    Returns the wait token to hand back to {!wait_end}. The [resource]
    and [holders] thunks are consulted only when the detector is
    armed; [holders] is re-read at quiescence so it should report the
    resource's *current* holder pids. *)

val wait_end : t -> int -> unit
(** Close a wait begun with {!wait_begin}. Runs in the resumer's
    context, so primitives must call it from the wakeup path they
    enqueue, not rely on the parked process itself. *)
