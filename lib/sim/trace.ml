type span = {
  id : int;
  parent : int option;
  pid : int;
  name : string;
  depth : int;
  t_start : float;
  t_end : float;
}

type t = {
  engine : Engine.t;
  mutable rev_spans : span list;
  mutable next_id : int;
  mutable active : bool;
}

(* Per-process view of one trace: the shared span sink plus this
   process's own open-span stack. The parent link and depth a process
   starts from are captured at spawn time (see [fork]), which is what
   makes cross-process spans causally connected. *)
type ctx = {
  tr : t;
  mutable stack : int list;  (* open span ids, innermost first *)
  inherit_parent : int option;
  inherit_depth : int;
}

(* Embed the context in the engine's universal process-local slot. *)
exception Ctx of ctx

(* Legacy engine-global trace: records from every process that carries
   no local context. Its single shared stack is only meaningful when one
   logical operation runs at a time. *)
let ambient : ctx option ref = ref None

let current () =
  let local =
    match Engine.self_opt () with
    | None -> None
    | Some engine -> (
        match Engine.get_local engine with
        | Some (Ctx c) when c.tr.active -> Some c
        | _ -> None)
  in
  match local with
  | Some _ -> local
  | None -> ( match !ambient with Some c when c.tr.active -> Some c | _ -> None)

(* seussheat: cold — the option is retained as the child's inherited parent link *)
let parent_of c =
  match c.stack with s :: _ -> Some s | [] -> c.inherit_parent

let depth_of c = c.inherit_depth + List.length c.stack

(* The spawn hook: a child gets a fresh stack over the same sink, with
   the spawner's innermost open span as its inherited parent. Installed
   engine-wide by [start_ctx]; the identity on non-trace slot values. *)
let fork slot =
  match slot with
  | Some (Ctx c) when c.tr.active ->
      (* seussheat: cold — the forked context is the product: one per spawn, retained by the child *)
      Some
        (Ctx
           {
             tr = c.tr;
             stack = [];
             inherit_parent = parent_of c;
             inherit_depth = depth_of c;
           })
  | other -> other

let make_trace engine =
  { engine; rev_spans = []; next_id = 0; active = true }

let start_ctx engine =
  let tr = make_trace engine in
  Engine.set_local_fork engine (Some fork);
  Engine.set_local engine
    (Some (Ctx { tr; stack = []; inherit_parent = None; inherit_depth = 0 }));
  tr

let sorted_spans t =
  (* Spans are recorded at exit; present them in start order. Ids are
     allocated at entry, so they break same-instant same-depth ties
     deterministically. *)
  List.sort
    (fun a b ->
      match compare a.t_start b.t_start with
      | 0 -> (
          match compare a.depth b.depth with 0 -> compare a.id b.id | c -> c)
      | c -> c)
    (List.rev t.rev_spans)

let stop_ctx t =
  t.active <- false;
  (match Engine.self_opt () with
  | Some engine -> (
      match Engine.get_local engine with
      (* seusslint: allow physical-eq — only this exact context may uninstall itself *)
      | Some (Ctx c) when c.tr == t -> Engine.set_local engine None
      | _ -> ())
  | None -> ());
  sorted_spans t

let start engine =
  if Option.is_some !ambient then invalid_arg "Trace.start: already tracing";
  let tr = make_trace engine in
  ambient := Some { tr; stack = []; inherit_parent = None; inherit_depth = 0 };
  tr

let stop t =
  t.active <- false;
  ambient := None;
  sorted_spans t

let fresh_id tr =
  tr.next_id <- tr.next_id + 1;
  tr.next_id

let record tr ~id ~parent ~pid ~name ~depth ~t_start =
  let t_end = Engine.now tr.engine in
  tr.rev_spans <- { id; parent; pid; name; depth; t_start; t_end } :: tr.rev_spans

let span name f =
  match current () with
  | None -> f ()
  | Some c -> (
      let tr = c.tr in
      let id = fresh_id tr in
      let parent = parent_of c in
      let depth = depth_of c in
      let pid = Engine.current_pid tr.engine in
      let t_start = Engine.now tr.engine in
      c.stack <- id :: c.stack;
      (* Remove wherever it sits, not just at the head: under the shared
         ambient context another process may have opened a span above
         ours, and a head-only pop would leak ours open forever. *)
      let close () = c.stack <- List.filter (fun s -> s <> id) c.stack in
      match f () with
      | v ->
          close ();
          record tr ~id ~parent ~pid ~name ~depth ~t_start;
          v
      | exception exn ->
          (* Exception safety: close the span (so siblings recorded
             after the handler see the right parent/depth) and record it
             flagged, then re-raise. *)
          close ();
          record tr ~id ~parent ~pid ~name:(name ^ " [failed]") ~depth ~t_start;
          raise exn)

let mark name =
  match current () with
  | None -> ()
  | Some c ->
      let tr = c.tr in
      let id = fresh_id tr in
      let now = Engine.now tr.engine in
      tr.rev_spans <-
        {
          id;
          parent = parent_of c;
          pid = Engine.current_pid tr.engine;
          name;
          depth = depth_of c;
          t_start = now;
          t_end = now;
        }
        :: tr.rev_spans

let render ?(unit_scale = 1e3) ?(unit_name = "ms") spans =
  match spans with
  | [] -> "(no spans)\n"
  | first :: _ ->
      let t0 =
        List.fold_left (fun acc s -> Float.min acc s.t_start) first.t_start spans
      in
      let buf = Buffer.create 512 in
      Buffer.add_string buf
        (Printf.sprintf "%10s %10s %10s  operation\n" "start" "end" "dur");
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "%10.3f %10.3f %10.3f  %s%s\n"
               ((s.t_start -. t0) *. unit_scale)
               ((s.t_end -. t0) *. unit_scale)
               ((s.t_end -. s.t_start) *. unit_scale)
               (String.make (2 * s.depth) ' ')
               s.name))
        spans;
      Buffer.add_string buf (Printf.sprintf "(times in %s)\n" unit_name);
      Buffer.contents buf
