type span = { name : string; depth : int; t_start : float; t_end : float }

type t = {
  engine : Engine.t;
  mutable rev_spans : span list;
  mutable depth : int;
  mutable active : bool;
}

(* Embed the context in the engine's universal process-local slot. *)
exception Ctx of t

(* Legacy engine-global trace: records from every process that carries
   no local context. *)
let ambient : t option ref = ref None

let current () =
  let local =
    match Engine.self_opt () with
    | None -> None
    | Some engine -> (
        match Engine.get_local engine with
        | Some (Ctx t) when t.active -> Some t
        | _ -> None)
  in
  match local with
  | Some _ -> local
  | None -> ( match !ambient with Some t when t.active -> Some t | _ -> None)

let start_ctx engine =
  let t = { engine; rev_spans = []; depth = 0; active = true } in
  Engine.set_local engine (Some (Ctx t));
  t

let sorted_spans t =
  (* Spans are recorded at exit; present them in start order. *)
  List.sort
    (fun a b ->
      match compare a.t_start b.t_start with
      | 0 -> compare a.depth b.depth
      | c -> c)
    (List.rev t.rev_spans)

let stop_ctx t =
  t.active <- false;
  (match Engine.self_opt () with
  | Some engine -> (
      match Engine.get_local engine with
      (* seusslint: allow physical-eq — only this exact context may uninstall itself *)
      | Some (Ctx u) when u == t -> Engine.set_local engine None
      | _ -> ())
  | None -> ());
  sorted_spans t

let start engine =
  if Option.is_some !ambient then invalid_arg "Trace.start: already tracing";
  let t = { engine; rev_spans = []; depth = 0; active = true } in
  ambient := Some t;
  t

let stop t =
  t.active <- false;
  ambient := None;
  sorted_spans t

let record t name depth t_start =
  let t_end = Engine.now t.engine in
  t.rev_spans <- { name; depth; t_start; t_end } :: t.rev_spans

let span name f =
  match current () with
  | None -> f ()
  | Some t -> (
      let t_start = Engine.now t.engine in
      let depth = t.depth in
      t.depth <- depth + 1;
      match f () with
      | v ->
          t.depth <- depth;
          record t name depth t_start;
          v
      | exception exn ->
          t.depth <- depth;
          record t (name ^ " [failed]") depth t_start;
          raise exn)

let mark name =
  match current () with
  | None -> ()
  | Some t ->
      let now = Engine.now t.engine in
      t.rev_spans <- { name; depth = t.depth; t_start = now; t_end = now } :: t.rev_spans

let render ?(unit_scale = 1e3) ?(unit_name = "ms") spans =
  match spans with
  | [] -> "(no spans)\n"
  | first :: _ ->
      let t0 =
        List.fold_left (fun acc s -> Float.min acc s.t_start) first.t_start spans
      in
      let buf = Buffer.create 512 in
      Buffer.add_string buf
        (Printf.sprintf "%10s %10s %10s  operation\n" "start" "end" "dur");
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "%10.3f %10.3f %10.3f  %s%s\n"
               ((s.t_start -. t0) *. unit_scale)
               ((s.t_end -. t0) *. unit_scale)
               ((s.t_end -. s.t_start) *. unit_scale)
               (String.make (2 * s.depth) ' ')
               s.name))
        spans;
      Buffer.add_string buf (Printf.sprintf "(times in %s)\n" unit_name);
      Buffer.contents buf
