type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  cmp : 'a -> 'a -> int;
}

let create ~cmp = { data = [||]; size = 0; cmp }

let length t = t.size

let is_empty t = t.size = 0

(* seussheat: cold — amortized capacity doubling, off the per-event path *)
let grow t x =
  if t.size = Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < t.size && t.cmp t.data.(l) t.data.(i) < 0 then l else i in
  let s = if r < t.size && t.cmp t.data.(r) t.data.(s) < 0 then r else s in
  if s <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(s);
    t.data.(s) <- tmp;
    sift_down t s
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Drop the stale slot so the heap does not retain the element. *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end;
    (* seussheat: cold — the option is pop's API result *)
    Some top
  end

let clear t =
  t.data <- [||];
  t.size <- 0
