type t = {
  capacity : int;
  mutable avail : int;
  waiters : (unit -> unit) Queue.t;
  (* Happens-before edge carrier: release publishes, a successful
     acquire observes (no-op unless the schedule sanitizer is armed). *)
  hb : Hb.sync;
}

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative capacity";
  { capacity = n; avail = n; waiters = Queue.create (); hb = Hb.make_sync () }

let capacity t = t.capacity
let available t = t.avail
let waiting t = Queue.length t.waiters
let in_use t = t.capacity - t.avail

let try_acquire t =
  if t.avail > 0 then begin
    t.avail <- t.avail - 1;
    Hb.observe t.hb;
    true
  end
  else false

let acquire t =
  if not (try_acquire t) then begin
    Engine.suspend (fun resume -> Queue.add resume t.waiters);
    Hb.observe t.hb
  end
(* The permit is handed directly to the woken waiter: [release] does not
   increment [avail] when a waiter is pending, so no third party can steal
   the permit between release and wakeup. *)

let release t =
  Hb.signal t.hb;
  match Queue.take_opt t.waiters with
  | Some resume -> resume ()
  | None ->
      if t.avail >= t.capacity then
        invalid_arg "Semaphore.release: released above capacity";
      t.avail <- t.avail + 1

let with_permit t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception exn ->
      release t;
      raise exn
