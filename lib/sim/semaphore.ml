type t = {
  capacity : int;
  mutable avail : int;
  waiters : (unit -> unit) Queue.t;
  (* Happens-before edge carrier: release publishes, a successful
     acquire observes (no-op unless the schedule sanitizer is armed). *)
  hb : Hb.sync;
  (* Deadlock-sanitizer bookkeeping, maintained only when the engine's
     detector is armed: [rname] is assigned on first wait, [holders]
     tracks the pids currently owning permits so the wait-for graph can
     find lock cycles. *)
  mutable rname : string;
  mutable holders : int list;
}

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative capacity";
  {
    capacity = n;
    avail = n;
    waiters = Queue.create ();
    hb = Hb.make_sync ();
    rname = "";
    holders = [];
  }

let capacity t = t.capacity
let available t = t.avail
let waiting t = Queue.length t.waiters
let in_use t = t.capacity - t.avail

let resource t e =
  if String.equal t.rname "" then t.rname <- Engine.fresh_resource e "semaphore";
  t.rname

let rec remove_once x = function
  | [] -> []
  | y :: rest -> if x = y then rest else y :: remove_once x rest

let note_acquire t =
  match Engine.self_opt () with
  | Some e when Engine.deadlock_armed e ->
      t.holders <- Engine.current_pid e :: t.holders
  | _ -> ()

let note_release t =
  match Engine.self_opt () with
  | Some e when Engine.deadlock_armed e ->
      t.holders <- remove_once (Engine.current_pid e) t.holders
  | _ -> ()

let try_acquire t =
  if t.avail > 0 then begin
    t.avail <- t.avail - 1;
    Hb.observe t.hb;
    note_acquire t;
    true
  end
  else false

let acquire t =
  if not (try_acquire t) then begin
    let e = Engine.self () in
    let tok =
      Engine.wait_begin e
        ~resource:(fun () -> resource t e)
        ~holders:(fun () -> t.holders)
    in
    Engine.suspend (fun resume ->
        Queue.add
          (fun () ->
            Engine.wait_end e tok;
            resume ())
          t.waiters);
    Hb.observe t.hb;
    (* The permit was handed to us directly by [release]; we are the
       holder from the moment we run again. *)
    note_acquire t
  end
(* The permit is handed directly to the woken waiter: [release] does not
   increment [avail] when a waiter is pending, so no third party can steal
   the permit between release and wakeup. *)

let release t =
  Hb.signal t.hb;
  note_release t;
  match Queue.take_opt t.waiters with
  | Some resume -> resume ()
  | None ->
      if t.avail >= t.capacity then
        invalid_arg "Semaphore.release: released above capacity";
      t.avail <- t.avail + 1

let with_permit t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception exn ->
      release t;
      raise exn
