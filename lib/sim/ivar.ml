type 'a state = Empty of (unit -> unit) Queue.t | Full of 'a

type 'a t = {
  mutable state : 'a state;
  (* Happens-before edge carrier: the fill publishes, readers observe
     (no-op unless the schedule sanitizer is armed). *)
  hb : Hb.sync;
  (* Deadlock-sanitizer display name, assigned on first armed wait. *)
  mutable rname : string;
}

let create () =
  { state = Empty (Queue.create ()); hb = Hb.make_sync (); rname = "" }

let resource t e =
  if String.equal t.rname "" then t.rname <- Engine.fresh_resource e "ivar";
  t.rname

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
      Hb.signal t.hb;
      t.state <- Full v;
      Queue.iter (fun resume -> resume ()) waiters;
      true

let fill t v =
  if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"

let is_full t = match t.state with Full _ -> true | Empty _ -> false

let peek t =
  match t.state with
  | Full v ->
      Hb.observe t.hb;
      Some v
  | Empty _ -> None

let read t =
  match t.state with
  | Full v ->
      Hb.observe t.hb;
      v
  | Empty waiters -> (
      let e = Engine.self () in
      let tok =
        Engine.wait_begin e
          ~resource:(fun () -> resource t e)
          ~holders:(fun () -> [])
      in
      Engine.suspend (fun resume ->
          Queue.add
            (fun () ->
              Engine.wait_end e tok;
              resume ())
            waiters);
      match t.state with
      | Full v ->
          Hb.observe t.hb;
          v
      | Empty _ -> assert false)

let read_timeout t ~timeout =
  match t.state with
  | Full v ->
      Hb.observe t.hb;
      Some v
  | Empty _ ->
      (* Race the fill against a timer through a secondary ivar so the
         blocked reader is woken exactly once. *)
      let race : [ `Value | `Timeout ] t = create () in
      let engine = Engine.self () in
      Engine.schedule engine ~delay:timeout (fun () ->
          ignore (try_fill race `Timeout));
      (match t.state with
      | Full _ -> ()
      | Empty waiters ->
          Queue.add (fun () -> ignore (try_fill race `Value)) waiters);
      (match read race with
      | `Value -> peek t
      | `Timeout -> peek t (* a fill at exactly the deadline still counts *))
