type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next t)

let float t =
  (* 53 high-quality bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* seussheat: cold — boxed Int64 steps by design; the engine draws only when
   the tie shuffler is armed, never on the unarmed dispatch path *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 62 bits so the value fits OCaml's 63-bit native int non-negatively. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  bits mod bound

let exponential t ~mean =
  let u = float t in
  -.mean *. log (1.0 -. u)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
