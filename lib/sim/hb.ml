(* Happens-before schedule sanitizer.

   In a discrete-event simulation the only order that can silently flip
   is the order of events at *equal* timestamps: across distinct times
   the clock itself serializes everything. Two processes that touch the
   same shared cell at the same simulated instant, with at least one
   write and no synchronization path between them, are exactly the
   accesses whose outcome the tie shuffler can permute — so that, and
   only that, is what this checker reports.

   Ordering edges come from the cooperative structure the simulator
   already has: spawning a process orders it after everything its parent
   did first, and the blocking primitives (Semaphore, Channel, Ivar)
   publish a release→acquire edge through a per-object [sync] record.
   Edges compose through vector clocks, TSan-style, but pruned to the
   current timestamp: a cell forgets its access history whenever the
   clock advances.

   The checker is dormant unless {!enable}d on an engine. Dormant, every
   hook is a cheap no-op that draws nothing and allocates nothing, so an
   unsanitized run is bit-identical to a build without this module. *)

(* Vector clocks as sorted association lists (pid -> count). Process
   fan-out per experiment is modest and entries are only created at
   spawn/sync, so the simple representation is fine. *)
type vc = (int * int) list

let vc_get vc pid = match List.assoc_opt pid vc with Some n -> n | None -> 0

let rec vc_join a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (pa, ca) :: ta, (pb, cb) :: tb ->
      if pa < pb then (pa, ca) :: vc_join ta b
      else if pb < pa then (pb, cb) :: vc_join a tb
      else (pa, max ca cb) :: vc_join ta tb

let vc_set vc pid n =
  let rec go = function
    | [] -> [ (pid, n) ]
    | (p, c) :: rest ->
        if p < pid then (p, c) :: go rest
        else if p = pid then (pid, n) :: rest
        else (pid, n) :: (p, c) :: rest
  in
  go vc

type pstate = { pid : int; mutable vc : vc }

exception Pstate_slot of pstate

type kind = Write_write | Read_write

let kind_name = function
  | Write_write -> "write/write"
  | Read_write -> "read/write"

type race = {
  cell : string;
  kind : kind;
  time : float;
  first_pid : int;
  second_pid : int;
}

type state = {
  engine : Engine.t;
  mutable next_pid : int;
  mutable races : race list; (* newest first *)
  mutable reporters : (race -> unit) list; (* registration order *)
}

exception State_slot of state

let state_of engine =
  match Engine.san_state engine with
  | Some (State_slot st) -> Some st
  | Some _ | None -> None

let enabled engine = Option.is_some (state_of engine)

let fresh_pid st =
  st.next_pid <- st.next_pid + 1;
  st.next_pid

(* The calling process's sanitizer state, created on first use: a
   process that was never forked from an instrumented parent still gets
   its own identity, just with no ordering edges behind it. *)
let pstate st =
  let engine = st.engine in
  match Engine.get_san_local engine with
  | Some (Pstate_slot p) -> p
  | _ ->
      let pid = fresh_pid st in
      let p = { pid; vc = [ (pid, 1) ] } in
      Engine.set_san_local engine (Some (Pstate_slot p));
      p

let enable engine =
  match state_of engine with
  | Some st -> st
  | None ->
      let st = { engine; next_pid = 0; races = []; reporters = [] } in
      Engine.set_san_state engine (Some (State_slot st));
      (* Spawn edge: the child is ordered after the parent's history at
         the spawn point; bumping the parent's own component afterwards
         keeps the parent's *later* accesses concurrent with the child. *)
      Engine.set_san_fork engine
        (Some
           (fun parent_slot ->
             let child_pid = fresh_pid st in
             let inherited =
               match parent_slot with
               | Some (Pstate_slot parent) ->
                   let vc = parent.vc in
                   parent.vc <-
                     vc_set parent.vc parent.pid (vc_get parent.vc parent.pid + 1);
                   vc
               | _ -> []
             in
             Some
               (Pstate_slot
                  { pid = child_pid; vc = vc_set inherited child_pid 1 })));
      st

let add_reporter engine f =
  match state_of engine with
  | None -> invalid_arg "Hb.add_reporter: sanitizer not enabled"
  | Some st -> st.reporters <- st.reporters @ [ f ]

let races engine =
  match state_of engine with None -> [] | Some st -> List.rev st.races

let race_count engine =
  match state_of engine with None -> 0 | Some st -> List.length st.races

(* {1 Sync objects} *)

(* One per blocking primitive instance. [svc] accumulates the joined
   clocks of every signaller; observers join it into their own clock. *)
type sync = { mutable svc : vc }

let make_sync () = { svc = [] }

(* Hooks are ambient: they find the running engine (if any) and its
   checker state (if armed), and otherwise cost two reads and a match. *)
let with_state f =
  match Engine.self_opt () with
  | None -> ()
  | Some engine -> ( match state_of engine with None -> () | Some st -> f st)

let signal sync =
  with_state (fun st ->
      let p = pstate st in
      sync.svc <- vc_join sync.svc p.vc;
      p.vc <- vc_set p.vc p.pid (vc_get p.vc p.pid + 1))

let observe sync =
  with_state (fun st ->
      if sync.svc <> [] then begin
        let p = pstate st in
        p.vc <- vc_join p.vc sync.svc
      end)

(* {1 Registered shared cells} *)

type access = { pid : int; write : bool; own : int (* accessor's clock *) }

type cell = {
  name : string;
  mutable atime : float;
  mutable accs : access list; (* accesses at [atime] only *)
}

let cell ~name = { name; atime = neg_infinity; accs = [] }

let cell_name c = c.name

let report st race =
  st.races <- race :: st.races;
  List.iter (fun f -> f race) st.reporters

let access c ~write =
  with_state (fun st ->
      let engine = st.engine in
      let now = Engine.now engine in
      if now > c.atime then begin
        (* The clock moved: everything earlier is serialized by time. *)
        c.atime <- now;
        c.accs <- []
      end;
      let p = pstate st in
      let own = vc_get p.vc p.pid in
      (* An equal-or-stronger access by this process at this instant was
         already checked; re-recording it would only duplicate reports. *)
      let covered =
        List.exists
          (fun a -> a.pid = p.pid && a.own = own && (a.write || not write))
          c.accs
      in
      if not covered then begin
        List.iter
          (fun a ->
            if a.pid <> p.pid && (a.write || write) then
              (* [a] happened-before us iff its own-clock value at the
                 access is covered by our view of its component. *)
              if a.own > vc_get p.vc a.pid then
                report st
                  {
                    cell = c.name;
                    kind = (if a.write && write then Write_write else Read_write);
                    time = now;
                    first_pid = a.pid;
                    second_pid = p.pid;
                  })
          c.accs;
        c.accs <- { pid = p.pid; write; own } :: c.accs
      end)

let read c = access c ~write:false
let write c = access c ~write:true
