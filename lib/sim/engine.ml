type event = { time : float; seq : int; pri : int; thunk : unit -> unit }

type local = exn

type t = {
  mutable clock : float;
  mutable seq : int;
  events : event Heap.t;
  prng : Prng.t;
  (* Schedule-sanitizer tie shuffler: when armed, every scheduled event
     draws a random priority from this private stream and equal-timestamp
     events fire in priority order instead of FIFO. A correct experiment
     is insensitive to tie order, so its outputs must be byte-identical
     under any shuffle seed; a divergence pinpoints latent
     order-dependence. [None] (the default) draws nothing and preserves
     exact FIFO tie-breaking, bit-identical to an unarmed build. *)
  tie : Prng.t option;
  mutable running : bool;
  mutable executed : int;
  (* The process-local slot of the currently-dispatching event: children
     inherit it at [spawn], and it is saved/restored across Sleep and
     Suspend so a process keeps its value over its whole lifetime. *)
  mutable local : local option;
  (* Second process-local slot, reserved for the happens-before
     sanitizer ([Hb]): kept separate from [local] so arming the
     sanitizer never competes with trace contexts for the one slot.
     Unlike [local], inheritance at [spawn] goes through [san_fork] so
     the sanitizer can fork (not share) per-process state. *)
  mutable san_local : local option;
  mutable san_fork : (local option -> local option) option;
  (* Engine-owned sanitizer-state slot (same universal-type idiom as
     [fault_plan]): [Hb] parks its per-engine checker state here. *)
  mutable san_state : local option;
  (* Engine-owned fault-plan slot (same universal-type idiom as [local]):
     the faults library parks its plan here so injection sites anywhere in
     the stack can find it without the engine depending on them. *)
  mutable fault_plan : local option;
  (* Supervised processes that died, newest first. *)
  mutable crashed : (string * exn) list;
}

exception Process_failure of string * exn

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else
    let c = compare a.pri b.pri in
    if c <> 0 then c else compare a.seq b.seq

let shuffle_env_var = "SEUSS_SHUFFLE_SEED"

let shuffle_seed_of_env () =
  match Sys.getenv_opt shuffle_env_var with
  | None | Some "" -> None  (* "" = unset: callers can't delete env vars *)
  | Some s -> (
      match Int64.of_string_opt (String.trim s) with
      | Some v -> Some v
      | None ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!"
            shuffle_env_var s;
          None)

let create ?(seed = 1L) ?tie_seed () =
  let tie_seed =
    match tie_seed with Some _ -> tie_seed | None -> shuffle_seed_of_env ()
  in
  {
    clock = 0.0;
    seq = 0;
    events = Heap.create ~cmp:cmp_event;
    prng = Prng.create seed;
    tie = Option.map Prng.create tie_seed;
    running = false;
    executed = 0;
    local = None;
    san_local = None;
    san_fork = None;
    san_state = None;
    fault_plan = None;
    crashed = [];
  }

let now t = t.clock
let rng t = t.prng
let events_executed t = t.executed
let tie_shuffling t = Option.is_some t.tie

let schedule t ~delay thunk =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  t.seq <- t.seq + 1;
  let pri =
    match t.tie with None -> 0 | Some p -> Prng.int p 0x4000_0000
  in
  Heap.push t.events { time = t.clock +. delay; seq = t.seq; pri; thunk }

(* The engine currently dispatching an event; the simulator is
   single-threaded so a global is unambiguous. *)
let current : t option ref = ref None

let self () =
  match !current with
  | Some t -> t
  | None -> invalid_arg "Engine.self: no simulation is running"

let self_opt () = !current

let get_local t = t.local
let set_local t v = t.local <- v

let get_san_local t = t.san_local
let set_san_local t v = t.san_local <- v
let set_san_fork t f = t.san_fork <- f

let san_state t = t.san_state
let set_san_state t v = t.san_state <- v

let fault_plan t = t.fault_plan
let set_fault_plan t v = t.fault_plan <- v

let failures t = List.rev t.crashed

let sleep delay = Effect.perform (Sleep delay)
let yield () = sleep 0.0
let suspend register = Effect.perform (Suspend register)

(* Run [f] as a process: a deep handler interprets Sleep/Suspend by parking
   the continuation in the event queue or with the caller's registrar. The
   handler stays attached when the continuation is resumed later, so a
   supervised process that crashes after a suspension is still caught. *)
let exec ?supervise t name f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun exn ->
          match supervise with
          | Some on_crash ->
              t.crashed <- (name, exn) :: t.crashed;
              on_crash name exn
          | None -> raise (Process_failure (name, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep delay ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = t.local in
                  let saved_san = t.san_local in
                  schedule t ~delay (fun () ->
                      t.local <- saved;
                      t.san_local <- saved_san;
                      continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = t.local in
                  let saved_san = t.san_local in
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Engine: process resumed twice"
                    else begin
                      resumed := true;
                      schedule t ~delay:0.0 (fun () ->
                          t.local <- saved;
                          t.san_local <- saved_san;
                          continue k ())
                    end
                  in
                  register resume)
          | _ -> None);
    }

(* The sanitizer slot a child starts with: forked from the spawner's via
   [san_fork] when the happens-before checker is armed, shared otherwise
   (in which case it is [None] anyway — nothing installs the slot but the
   checker). Computed at [spawn] time, so the child is ordered after
   everything its parent did before the spawn and concurrent with the
   rest. *)
let child_san t =
  match t.san_fork with None -> t.san_local | Some fork -> fork t.san_local

let spawn t ?(name = "process") f =
  (* Children inherit the spawner's local slot (e.g. its trace
     context), so work fanned out by an invocation records into the
     invocation's own trace. *)
  let inherited = t.local in
  let inherited_san = child_san t in
  schedule t ~delay:0.0 (fun () ->
      t.local <- inherited;
      t.san_local <- inherited_san;
      exec t name f)

let spawn_supervised t ?(name = "process") ?(on_crash = fun _ _ -> ()) f =
  let inherited = t.local in
  let inherited_san = child_san t in
  schedule t ~delay:0.0 (fun () ->
      t.local <- inherited;
      t.san_local <- inherited_san;
      exec ~supervise:on_crash t name f)

let run ?until t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  let finished = ref false in
  let restore () =
    t.running <- false;
    t.local <- None;
    t.san_local <- None;
    current := None
  in
  (try
     current := Some t;
     while not !finished do
       match Heap.peek t.events with
       | None -> finished := true
       | Some ev -> (
           match until with
           | Some limit when ev.time > limit ->
               t.clock <- limit;
               finished := true
           | _ ->
               ignore (Heap.pop t.events);
               t.clock <- ev.time;
               t.executed <- t.executed + 1;
               (* Each event starts with clean slots; process
                  continuations restore their own saved values. *)
               t.local <- None;
               t.san_local <- None;
               ev.thunk ())
     done
   with exn ->
     restore ();
     raise exn);
  restore ()
