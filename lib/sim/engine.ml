type local = exn

(* Identity of the currently-dispatching process, carried across
   suspensions like the local slots. Daemons are processes expected to
   park forever (accept loops, refill loops): they are excluded from
   [stuck_waiters] and only reported by the deadlock detector when they
   sit on a wait cycle. *)
type pinfo = { p_id : int; p_name : string; p_born : float; p_daemon : bool }

(* One parked waiter, keyed by its wait token. [w_holders] is a thunk so
   the current holder set is read at quiescence, not at park time. *)
type waiter = {
  w_resource : string;
  w_holders : unit -> int list;
  w_pid : int;
  w_name : string;
  w_born : float;
  w_daemon : bool;
  w_since : float;
}

type stranded = {
  resource : string;
  proc : string;
  pid : int;
  spawned_at : float;
  waiting_since : float;
  holders : int list;
  in_cycle : bool;
}

type kont = (unit, unit) Effect.Deep.continuation

(* The simulated clock lives in its own all-float record: float fields
   of a flat float record read and write unboxed, so advancing the clock
   on every dispatch allocates nothing. Inlined into the engine record it
   would be a boxed store per event. *)
type clockbox = { mutable t_now : float }

type t = {
  clk : clockbox;
  mutable seq : int;
  (* The event queue, as a binary min-heap over parallel arrays plus a
     payload arena, rather than a heap of event records. The heap
     columns ([q_time]/[q_pri]/[q_seq]/[q_slot]) are all unboxed
     scalars: timestamps stay flat in the float array, the
     (time, pri, seq) comparator is monomorphic float/int compares, and
     — crucially — sift swaps move no pointers, so reheapification never
     calls the GC write barrier. Payloads live in the arena columns
     indexed by [q_slot]: each slot is either a plain callback
     ([a_kind] 0: [a_thunk]) or a parked process continuation with its
     saved process-local slots ([a_kind] 1:
     [a_kont]/[a_local]/[a_san]/[a_proc]) — storing the continuation
     and slots directly replaces the per-suspension closure the old
     record-based queue allocated. A slot is written once at push and
     reset to the dummies at pop (so the arena retains nothing), with
     free slots kept on an integer stack. Nothing on this path
     allocates once the arrays are grown. *)
  mutable q_size : int;
  mutable q_time : float array;
  mutable q_pri : int array;
  mutable q_seq : int array;
  mutable q_slot : int array;
  mutable a_kind : int array;
  mutable a_thunk : (unit -> unit) array;
  mutable a_kont : kont array;
  mutable a_local : local option array;
  mutable a_san : local option array;
  mutable a_proc : pinfo option array;
  mutable free : int array;  (* free arena slots, as a stack *)
  mutable free_top : int;
  prng : Prng.t;
  (* Schedule-sanitizer tie shuffler: when armed, every scheduled event
     draws a random priority from this private stream and equal-timestamp
     events fire in priority order instead of FIFO. A correct experiment
     is insensitive to tie order, so its outputs must be byte-identical
     under any shuffle seed; a divergence pinpoints latent
     order-dependence. [None] (the default) draws nothing and preserves
     exact FIFO tie-breaking, bit-identical to an unarmed build. *)
  tie : Prng.t option;
  mutable running : bool;
  mutable executed : int;
  (* Self-profiling: high-water mark of the event heap. Together with
     [seq] (every schedule is a heap push) and [executed] (every
     dispatch is a pop) this is the engine's always-on perf counter set
     — integer compares only, no allocation, no schedule effect. *)
  mutable max_heap : int;
  (* [Some t], built once at [create] so entering [run] does not
     allocate a fresh option per call (the dynamic zero-alloc test in
     test_sim measures an entire run). *)
  mutable self_some : t option;
  (* The process-local slot of the currently-dispatching event: children
     inherit it at [spawn], and it is saved/restored across Sleep and
     Suspend so a process keeps its value over its whole lifetime. *)
  mutable local : local option;
  (* Optional fork hook for [local], mirroring [san_fork]: when
     installed, a spawned child's initial slot is [fork parent_slot]
     instead of the shared value — this is how trace contexts give each
     process its own span stack while recording the spawn parent link. *)
  mutable local_fork : (local option -> local option) option;
  (* Second process-local slot, reserved for the happens-before
     sanitizer ([Hb]): kept separate from [local] so arming the
     sanitizer never competes with trace contexts for the one slot.
     Unlike [local], inheritance at [spawn] goes through [san_fork] so
     the sanitizer can fork (not share) per-process state. *)
  mutable san_local : local option;
  mutable san_fork : (local option -> local option) option;
  (* Engine-owned sanitizer-state slot (same universal-type idiom as
     [fault_plan]): [Hb] parks its per-engine checker state here. *)
  mutable san_state : local option;
  (* Engine-owned fault-plan slot (same universal-type idiom as [local]):
     the faults library parks its plan here so injection sites anywhere in
     the stack can find it without the engine depending on them. *)
  mutable fault_plan : local option;
  (* Supervised processes that died, newest first. *)
  mutable crashed : (string * exn) list;
  (* Deadlock sanitizer. The wait counters are always on (integer
     bumps only — no draws, no allocation, no schedule effect), so
     [stuck_waiters] is meaningful even with the detector off; the
     [waits] table and resource naming are populated only when
     [deadlock] is armed. *)
  deadlock : bool;
  (* Ownership census: when armed, the registered census hooks run at
     natural quiescence (after the stranded-waiter report) so each node
     can count resources still held — leaked frames, snapshot refs,
     pinned snapshots, undestroyed UCs. Off, nothing registers and the
     run is byte-identical to a build without the hook. *)
  own : bool;
  mutable census_hooks : (unit -> unit) list;
  mutable proc : pinfo option;
  mutable next_pid : int;
  mutable parked : int;  (* non-daemon processes currently suspended *)
  mutable parked_daemon : int;
  waits : (int, waiter) Hashtbl.t;  (* wait token -> waiter, armed only *)
  mutable next_token : int;
  mutable next_resource : int;
  mutable deadlock_reporters : (stranded -> unit) list;
}

exception Process_failure of string * exn

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Never : unit Effect.t  (* performed exactly once, to mint [dummy_kont] *)

let dummy_thunk () = ()

(* seussheat: cold — one-time module initialisation, never on a dispatch path *)
let dummy_kont : kont =
  (* A real continuation that is never resumed: it fills the vacant
     slots of the [a_kont] array so pops can clear their slot without an
     option box per event. Capturing it costs one leaked fiber, once. *)
  let stash : kont option ref = ref None in
  Effect.Deep.match_with
    (fun () -> Effect.perform Never)
    ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Never ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  stash := Some k)
          | _ -> None);
    };
  match !stash with Some k -> k | None -> assert false

let shuffle_env_var = "SEUSS_SHUFFLE_SEED"

let shuffle_seed_of_env () =
  match Sys.getenv_opt shuffle_env_var with
  | None | Some "" -> None  (* "" = unset: callers can't delete env vars *)
  | Some s -> (
      match Int64.of_string_opt (String.trim s) with
      | Some v -> Some v
      | None ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!"
            shuffle_env_var s;
          None)

let deadlock_env_var = "SEUSS_DEADLOCK"

let deadlock_of_env () =
  match Sys.getenv_opt deadlock_env_var with
  | None | Some "" -> false  (* "" = unset: callers can't delete env vars *)
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> true
      | "0" | "false" | "no" | "off" -> false
      | _ ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!"
            deadlock_env_var s;
          false)

let own_env_var = "SEUSS_OWN"

let own_of_env () =
  match Sys.getenv_opt own_env_var with
  | None | Some "" -> false  (* "" = unset: callers can't delete env vars *)
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> true
      | "0" | "false" | "no" | "off" -> false
      | _ ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!" own_env_var s;
          false)

let initial_capacity = 256

let create ?(seed = 1L) ?tie_seed ?deadlock ?own () =
  let tie_seed =
    match tie_seed with Some _ -> tie_seed | None -> shuffle_seed_of_env ()
  in
  let deadlock =
    match deadlock with Some b -> b | None -> deadlock_of_env ()
  in
  let own = match own with Some b -> b | None -> own_of_env () in
  let t =
    {
      clk = { t_now = 0.0 };
      seq = 0;
      q_size = 0;
      q_time = Array.make initial_capacity 0.0;
      q_pri = Array.make initial_capacity 0;
      q_seq = Array.make initial_capacity 0;
      q_slot = Array.make initial_capacity 0;
      a_kind = Array.make initial_capacity 0;
      a_thunk = Array.make initial_capacity dummy_thunk;
      a_kont = Array.make initial_capacity dummy_kont;
      a_local = Array.make initial_capacity None;
      a_san = Array.make initial_capacity None;
      a_proc = Array.make initial_capacity None;
      free = Array.init initial_capacity (fun i -> i);
      free_top = initial_capacity;
      prng = Prng.create seed;
      tie = Option.map Prng.create tie_seed;
      running = false;
      executed = 0;
      max_heap = 0;
      self_some = None;
      local = None;
      local_fork = None;
      san_local = None;
      san_fork = None;
      san_state = None;
      fault_plan = None;
      crashed = [];
      deadlock;
      own;
      census_hooks = [];
      proc = None;
      next_pid = 0;
      parked = 0;
      parked_daemon = 0;
      waits = Hashtbl.create 16;
      next_token = 0;
      next_resource = 0;
      deadlock_reporters = [];
    }
  in
  t.self_some <- Some t;
  t

let now t = t.clk.t_now
let rng t = t.prng
let events_executed t = t.executed
let tie_shuffling t = Option.is_some t.tie

let pending t = t.q_size

type perf = { dispatched : int; scheduled : int; max_heap : int }

let perf t =
  { dispatched = t.executed; scheduled = t.seq; max_heap = t.max_heap }

(* {1 The event arena}

   A classic binary min-heap, sifted with the exact tie-breaking of the
   old record comparator ((time, pri, seq), strict-less moves) so event
   dispatch order — and therefore every experiment output byte — is
   unchanged. All compares are monomorphic: float reads from the time
   array, int reads elsewhere. Times are validated finite at schedule,
   so IEEE [<] is a total order here. *)

let ev_before t i j =
  let ti = t.q_time.(i) and tj = t.q_time.(j) in
  if ti < tj then true
  else if tj < ti then false
  else
    let pi = t.q_pri.(i) and pj = t.q_pri.(j) in
    if pi < pj then true
    else if pj < pi then false
    else t.q_seq.(i) < t.q_seq.(j)

let heap_swap t i j =
  let ft = t.q_time.(i) in
  t.q_time.(i) <- t.q_time.(j);
  t.q_time.(j) <- ft;
  let n = t.q_pri.(i) in
  t.q_pri.(i) <- t.q_pri.(j);
  t.q_pri.(j) <- n;
  let n = t.q_seq.(i) in
  t.q_seq.(i) <- t.q_seq.(j);
  t.q_seq.(j) <- n;
  let n = t.q_slot.(i) in
  t.q_slot.(i) <- t.q_slot.(j);
  t.q_slot.(j) <- n

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if ev_before t i parent then begin
      heap_swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < t.q_size && ev_before t l i then l else i in
  let s = if r < t.q_size && ev_before t r s then r else s in
  if s <> i then begin
    heap_swap t i s;
    sift_down t s
  end

(* seussheat: cold — amortized arena doubling, off the per-event path *)
let grow t =
  (* Only called when the queue is full, so every arena slot is live
     ([free_top] = 0): heap columns copy the live prefix, arena columns
     copy whole (live slots are scattered), and the new free stack holds
     exactly the freshly minted slots. *)
  let old = Array.length t.q_time in
  let cap = 2 * old in
  let time = Array.make cap 0.0 in
  Array.blit t.q_time 0 time 0 t.q_size;
  t.q_time <- time;
  let copy_int src =
    let a = Array.make cap 0 in
    Array.blit src 0 a 0 old;
    a
  in
  t.q_pri <- copy_int t.q_pri;
  t.q_seq <- copy_int t.q_seq;
  t.q_slot <- copy_int t.q_slot;
  t.a_kind <- copy_int t.a_kind;
  let thunk = Array.make cap dummy_thunk in
  Array.blit t.a_thunk 0 thunk 0 old;
  t.a_thunk <- thunk;
  let kont = Array.make cap dummy_kont in
  Array.blit t.a_kont 0 kont 0 old;
  t.a_kont <- kont;
  let copy_opt src =
    let a = Array.make cap None in
    Array.blit src 0 a 0 old;
    a
  in
  t.a_local <- copy_opt t.a_local;
  t.a_san <- copy_opt t.a_san;
  t.a_proc <- copy_opt t.a_proc;
  (* Sized [cap] so the stack can absorb every slot as the queue drains. *)
  t.free <- Array.init cap (fun i -> if i < old then old + i else 0);
  t.free_top <- old

(* Push a heap entry for an event [delay] from now and return the fresh
   arena slot; the caller fills the slot's payload columns. *)
let push_event t ~delay =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  t.seq <- t.seq + 1;
  let pri = match t.tie with None -> 0 | Some p -> Prng.int p 0x4000_0000 in
  if t.q_size = Array.length t.q_time then grow t;
  let slot = t.free.(t.free_top - 1) in
  t.free_top <- t.free_top - 1;
  let i = t.q_size in
  t.q_time.(i) <- t.clk.t_now +. delay;
  t.q_pri.(i) <- pri;
  t.q_seq.(i) <- t.seq;
  t.q_slot.(i) <- slot;
  t.q_size <- i + 1;
  sift_up t i;
  if t.q_size > t.max_heap then t.max_heap <- t.q_size;
  slot

let schedule t ~delay thunk =
  let slot = push_event t ~delay in
  (* Vacated slots are pre-cleared, so only the thunk column is set. *)
  t.a_thunk.(slot) <- thunk

(* Park a process continuation with its saved process-local slots. *)
let push_resume t ~delay k saved saved_san saved_proc =
  let slot = push_event t ~delay in
  t.a_kind.(slot) <- 1;
  t.a_kont.(slot) <- k;
  t.a_local.(slot) <- saved;
  t.a_san.(slot) <- saved_san;
  t.a_proc.(slot) <- saved_proc

(* The engine currently dispatching an event; the simulator is
   single-threaded so a global is unambiguous. *)
let current : t option ref = ref None

let self () =
  match !current with
  | Some t -> t
  | None -> invalid_arg "Engine.self: no simulation is running"

let self_opt () = !current

let get_local t = t.local
let set_local t v = t.local <- v
let set_local_fork t f = t.local_fork <- f

let get_san_local t = t.san_local
let set_san_local t v = t.san_local <- v
let set_san_fork t f = t.san_fork <- f

let san_state t = t.san_state
let set_san_state t v = t.san_state <- v

let fault_plan t = t.fault_plan
let set_fault_plan t v = t.fault_plan <- v

let failures t = List.rev t.crashed

(* {1 Deadlock sanitizer} *)

let deadlock_armed t = t.deadlock
let stuck_waiters t = t.parked
let current_pid t = match t.proc with Some p -> p.p_id | None -> 0

let add_deadlock_reporter t f =
  t.deadlock_reporters <- f :: t.deadlock_reporters

(* {1 Ownership census} *)

let own_armed t = t.own

let add_census_hook t f = t.census_hooks <- f :: t.census_hooks

let fresh_resource t kind =
  t.next_resource <- t.next_resource + 1;
  Printf.sprintf "%s#%d" kind t.next_resource

(* seussheat: cold — waiter provenance is recorded only when the detector is armed *)
let record_waiter t token daemon ~resource ~holders =
  let pid, name, born =
    match t.proc with
    | Some p -> (p.p_id, p.p_name, p.p_born)
    | None -> (0, "callback", t.clk.t_now)
  in
  Hashtbl.replace t.waits token
    {
      w_resource = resource ();
      w_holders = holders;
      w_pid = pid;
      w_name = name;
      w_born = born;
      w_daemon = daemon;
      w_since = t.clk.t_now;
    }

(* The wait token encodes the waiter's daemon bit in its low bit so
   [wait_end] — which runs in the *resumer's* context, where [t.proc]
   is the resumer, not the waiter — can decrement the right counter. *)
let wait_begin t ~resource ~holders =
  let daemon = match t.proc with Some p -> p.p_daemon | None -> false in
  let token = (t.next_token lsl 1) lor Bool.to_int daemon in
  t.next_token <- t.next_token + 1;
  if daemon then t.parked_daemon <- t.parked_daemon + 1
  else t.parked <- t.parked + 1;
  if t.deadlock then record_waiter t token daemon ~resource ~holders;
  token

let wait_end t token =
  if token land 1 = 1 then t.parked_daemon <- t.parked_daemon - 1
  else t.parked <- t.parked - 1;
  if t.deadlock then Hashtbl.remove t.waits token

(* Walk the wait-for graph over parked processes: an edge goes from a
   waiter to each holder of the resource it waits on that is itself
   parked. Non-daemon waiters are stranded outright at quiescence;
   daemons are reported only when they sit on a cycle. *)
(* seussheat: cold — quiescence analysis, runs once per drained armed run *)
let stranded_waiters t =
  if not t.deadlock then []
  else begin
    let entries = Det.bindings t.waits in
    let waiting = List.map (fun (_, w) -> w.w_pid) entries in
    let adj =
      List.map
        (fun (_, w) ->
          (w.w_pid, List.filter (fun h -> List.mem h waiting) (w.w_holders ())))
        entries
    in
    let succs p =
      match List.assoc_opt p adj with Some l -> l | None -> []
    in
    let reaches_self p0 =
      let rec go visited = function
        | [] -> false
        | x :: rest ->
            if List.mem x visited then go visited rest
            else if List.mem p0 (succs x) then true
            else go (x :: visited) (succs x @ rest)
      in
      go [] (succs p0)
    in
    List.filter_map
      (fun (_, w) ->
        let in_cycle = reaches_self w.w_pid in
        if w.w_daemon && not in_cycle then None
        else
          Some
            {
              resource = w.w_resource;
              proc = w.w_name;
              pid = w.w_pid;
              spawned_at = w.w_born;
              waiting_since = w.w_since;
              holders = w.w_holders ();
              in_cycle;
            })
      entries
  end

let sleep delay =
  (* seussheat: cold — the effect payload: performing Sleep boxes its argument by construction *)
  Effect.perform (Sleep delay)
let yield () = sleep 0.0
let suspend register = Effect.perform (Suspend register)

(* Run [f] as a process: a deep handler interprets Sleep/Suspend by parking
   the continuation in the event arena or with the caller's registrar. The
   handler stays attached when the continuation is resumed later, so a
   supervised process that crashes after a suspension is still caught. *)
let exec ?supervise ?(daemon = false) t name f =
  t.next_pid <- t.next_pid + 1;
  t.proc <-
    Some { p_id = t.next_pid; p_name = name; p_born = t.clk.t_now; p_daemon = daemon };
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun exn ->
          match supervise with
          | Some on_crash ->
              t.crashed <- (name, exn) :: t.crashed;
              on_crash name exn
          | None -> raise (Process_failure (name, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep delay ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* The handler runs at suspension time, so the engine
                     slots still belong to the parking process: park them
                     with the continuation, no closure needed. *)
                  push_resume t ~delay k t.local t.san_local t.proc)
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = t.local in
                  let saved_san = t.san_local in
                  let saved_proc = t.proc in
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Engine: process resumed twice"
                    else begin
                      resumed := true;
                      push_resume t ~delay:0.0 k saved saved_san saved_proc
                    end
                  in
                  register resume)
          | _ -> None);
    }

(* The sanitizer slot a child starts with: forked from the spawner's via
   [san_fork] when the happens-before checker is armed, shared otherwise
   (in which case it is [None] anyway — nothing installs the slot but the
   checker). Computed at [spawn] time, so the child is ordered after
   everything its parent did before the spawn and concurrent with the
   rest. *)
let child_san t =
  match t.san_fork with None -> t.san_local | Some fork -> fork t.san_local

(* Same shape for the primary slot: forked when a hook is installed
   (trace contexts), shared verbatim otherwise. *)
let child_local t =
  match t.local_fork with None -> t.local | Some fork -> fork t.local

let spawn t ?(name = "process") ?(daemon = false) f =
  (* Children inherit the spawner's local slot (e.g. its trace
     context), so work fanned out by an invocation records into the
     invocation's own trace. *)
  let inherited = child_local t in
  let inherited_san = child_san t in
  schedule t ~delay:0.0 (fun () ->
      t.local <- inherited;
      t.san_local <- inherited_san;
      exec ~daemon t name f)

let spawn_supervised t ?(name = "process") ?(daemon = false)
    ?(on_crash = fun _ _ -> ()) f =
  let inherited = child_local t in
  let inherited_san = child_san t in
  schedule t ~delay:0.0 (fun () ->
      t.local <- inherited;
      t.san_local <- inherited_san;
      exec ~supervise:on_crash ~daemon t name f)

let restore_idle t =
  t.running <- false;
  t.local <- None;
  t.san_local <- None;
  t.proc <- None;
  current := None

(* seussheat: cold — runs once per drained armed run, off the dispatch path *)
let report_stranded t =
  List.iter
    (fun s -> List.iter (fun f -> f s) (List.rev t.deadlock_reporters))
    (stranded_waiters t)

(* seussheat: cold — runs once per drained armed run, off the dispatch path *)
let run_census t = List.iter (fun f -> f ()) (List.rev t.census_hooks)

(* The dispatch loop, as a tail-recursive drain so an unarmed run
   allocates nothing at all: no option per peek/pop (slot columns are
   read in place), no refs, no closures. Returns whether the queue
   drained (as opposed to stopping at the [limit] cut). *)
let rec dispatch_loop t limit =
  if t.q_size = 0 then true
  else begin
    let time = t.q_time.(0) in
    if time > limit then false
    else begin
      (* Pop the heap root (scalar moves only), then read out and reset
         its arena slot so the arena retains nothing. *)
      let slot = t.q_slot.(0) in
      let last = t.q_size - 1 in
      if last > 0 then begin
        t.q_time.(0) <- t.q_time.(last);
        t.q_pri.(0) <- t.q_pri.(last);
        t.q_seq.(0) <- t.q_seq.(last);
        t.q_slot.(0) <- t.q_slot.(last)
      end;
      t.q_time.(last) <- 0.0;
      t.q_pri.(last) <- 0;
      t.q_seq.(last) <- 0;
      t.q_slot.(last) <- 0;
      t.q_size <- last;
      if last > 1 then sift_down t 0;
      let kind = t.a_kind.(slot) in
      let thunk = t.a_thunk.(slot) in
      let k = t.a_kont.(slot) in
      let l = t.a_local.(slot) in
      let s = t.a_san.(slot) in
      let p = t.a_proc.(slot) in
      (* Reset only the columns this event used: callbacks never touch
         the continuation columns and vice versa. *)
      if kind = 0 then t.a_thunk.(slot) <- dummy_thunk
      else begin
        t.a_kind.(slot) <- 0;
        t.a_kont.(slot) <- dummy_kont;
        t.a_local.(slot) <- None;
        t.a_san.(slot) <- None;
        t.a_proc.(slot) <- None
      end;
      t.free.(t.free_top) <- slot;
      t.free_top <- t.free_top + 1;
      t.clk.t_now <- time;
      t.executed <- t.executed + 1;
      (* Each event starts with its own slots: a plain callback with
         clean ones, a resumed process with the values it parked. *)
      t.local <- l;
      t.san_local <- s;
      t.proc <- p;
      if kind = 0 then thunk () else Effect.Deep.continue k ();
      dispatch_loop t limit
    end
  end

let run ?until t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  current := t.self_some;
  let limit = match until with None -> Float.infinity | Some l -> l in
  match dispatch_loop t limit with
  | drained ->
      if not drained then t.clk.t_now <- limit;
      (* Natural quiescence (the queue drained, not an [until] cut):
         anything still parked can never be woken — walk the wait-for
         graph and hand each stranded waiter to the reporters. *)
      if drained && t.deadlock then report_stranded t;
      if drained && t.own then run_census t;
      restore_idle t
  | exception exn ->
      restore_idle t;
      raise exn
