type event = { time : float; seq : int; pri : int; thunk : unit -> unit }

type local = exn

(* Identity of the currently-dispatching process, carried across
   suspensions like the local slots. Daemons are processes expected to
   park forever (accept loops, refill loops): they are excluded from
   [stuck_waiters] and only reported by the deadlock detector when they
   sit on a wait cycle. *)
type pinfo = { p_id : int; p_name : string; p_born : float; p_daemon : bool }

(* One parked waiter, keyed by its wait token. [w_holders] is a thunk so
   the current holder set is read at quiescence, not at park time. *)
type waiter = {
  w_resource : string;
  w_holders : unit -> int list;
  w_pid : int;
  w_name : string;
  w_born : float;
  w_daemon : bool;
  w_since : float;
}

type stranded = {
  resource : string;
  proc : string;
  pid : int;
  spawned_at : float;
  waiting_since : float;
  holders : int list;
  in_cycle : bool;
}

type t = {
  mutable clock : float;
  mutable seq : int;
  events : event Heap.t;
  prng : Prng.t;
  (* Schedule-sanitizer tie shuffler: when armed, every scheduled event
     draws a random priority from this private stream and equal-timestamp
     events fire in priority order instead of FIFO. A correct experiment
     is insensitive to tie order, so its outputs must be byte-identical
     under any shuffle seed; a divergence pinpoints latent
     order-dependence. [None] (the default) draws nothing and preserves
     exact FIFO tie-breaking, bit-identical to an unarmed build. *)
  tie : Prng.t option;
  mutable running : bool;
  mutable executed : int;
  (* Self-profiling: high-water mark of the event heap. Together with
     [seq] (every schedule is a heap push) and [executed] (every
     dispatch is a pop) this is the engine's always-on perf counter set
     — integer compares only, no allocation, no schedule effect. *)
  mutable max_heap : int;
  (* The process-local slot of the currently-dispatching event: children
     inherit it at [spawn], and it is saved/restored across Sleep and
     Suspend so a process keeps its value over its whole lifetime. *)
  mutable local : local option;
  (* Optional fork hook for [local], mirroring [san_fork]: when
     installed, a spawned child's initial slot is [fork parent_slot]
     instead of the shared value — this is how trace contexts give each
     process its own span stack while recording the spawn parent link. *)
  mutable local_fork : (local option -> local option) option;
  (* Second process-local slot, reserved for the happens-before
     sanitizer ([Hb]): kept separate from [local] so arming the
     sanitizer never competes with trace contexts for the one slot.
     Unlike [local], inheritance at [spawn] goes through [san_fork] so
     the sanitizer can fork (not share) per-process state. *)
  mutable san_local : local option;
  mutable san_fork : (local option -> local option) option;
  (* Engine-owned sanitizer-state slot (same universal-type idiom as
     [fault_plan]): [Hb] parks its per-engine checker state here. *)
  mutable san_state : local option;
  (* Engine-owned fault-plan slot (same universal-type idiom as [local]):
     the faults library parks its plan here so injection sites anywhere in
     the stack can find it without the engine depending on them. *)
  mutable fault_plan : local option;
  (* Supervised processes that died, newest first. *)
  mutable crashed : (string * exn) list;
  (* Deadlock sanitizer. The wait counters are always on (integer
     bumps only — no draws, no allocation, no schedule effect), so
     [stuck_waiters] is meaningful even with the detector off; the
     [waits] table and resource naming are populated only when
     [deadlock] is armed. *)
  deadlock : bool;
  mutable proc : pinfo option;
  mutable next_pid : int;
  mutable parked : int;  (* non-daemon processes currently suspended *)
  mutable parked_daemon : int;
  waits : (int, waiter) Hashtbl.t;  (* wait token -> waiter, armed only *)
  mutable next_token : int;
  mutable next_resource : int;
  mutable deadlock_reporters : (stranded -> unit) list;
}

exception Process_failure of string * exn

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else
    let c = compare a.pri b.pri in
    if c <> 0 then c else compare a.seq b.seq

let shuffle_env_var = "SEUSS_SHUFFLE_SEED"

let shuffle_seed_of_env () =
  match Sys.getenv_opt shuffle_env_var with
  | None | Some "" -> None  (* "" = unset: callers can't delete env vars *)
  | Some s -> (
      match Int64.of_string_opt (String.trim s) with
      | Some v -> Some v
      | None ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!"
            shuffle_env_var s;
          None)

let deadlock_env_var = "SEUSS_DEADLOCK"

let deadlock_of_env () =
  match Sys.getenv_opt deadlock_env_var with
  | None | Some "" -> false  (* "" = unset: callers can't delete env vars *)
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> true
      | "0" | "false" | "no" | "off" -> false
      | _ ->
          Printf.eprintf "warning: ignoring malformed %s=%S\n%!"
            deadlock_env_var s;
          false)

let create ?(seed = 1L) ?tie_seed ?deadlock () =
  let tie_seed =
    match tie_seed with Some _ -> tie_seed | None -> shuffle_seed_of_env ()
  in
  let deadlock =
    match deadlock with Some b -> b | None -> deadlock_of_env ()
  in
  {
    clock = 0.0;
    seq = 0;
    events = Heap.create ~cmp:cmp_event;
    prng = Prng.create seed;
    tie = Option.map Prng.create tie_seed;
    running = false;
    executed = 0;
    max_heap = 0;
    local = None;
    local_fork = None;
    san_local = None;
    san_fork = None;
    san_state = None;
    fault_plan = None;
    crashed = [];
    deadlock;
    proc = None;
    next_pid = 0;
    parked = 0;
    parked_daemon = 0;
    waits = Hashtbl.create 16;
    next_token = 0;
    next_resource = 0;
    deadlock_reporters = [];
  }

let now t = t.clock
let rng t = t.prng
let events_executed t = t.executed
let tie_shuffling t = Option.is_some t.tie

let pending t = Heap.length t.events

type perf = { dispatched : int; scheduled : int; max_heap : int }

let perf t =
  { dispatched = t.executed; scheduled = t.seq; max_heap = t.max_heap }

let schedule t ~delay thunk =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  t.seq <- t.seq + 1;
  let pri =
    match t.tie with None -> 0 | Some p -> Prng.int p 0x4000_0000
  in
  Heap.push t.events { time = t.clock +. delay; seq = t.seq; pri; thunk };
  let depth = Heap.length t.events in
  if depth > t.max_heap then t.max_heap <- depth

(* The engine currently dispatching an event; the simulator is
   single-threaded so a global is unambiguous. *)
let current : t option ref = ref None

let self () =
  match !current with
  | Some t -> t
  | None -> invalid_arg "Engine.self: no simulation is running"

let self_opt () = !current

let get_local t = t.local
let set_local t v = t.local <- v
let set_local_fork t f = t.local_fork <- f

let get_san_local t = t.san_local
let set_san_local t v = t.san_local <- v
let set_san_fork t f = t.san_fork <- f

let san_state t = t.san_state
let set_san_state t v = t.san_state <- v

let fault_plan t = t.fault_plan
let set_fault_plan t v = t.fault_plan <- v

let failures t = List.rev t.crashed

(* {1 Deadlock sanitizer} *)

let deadlock_armed t = t.deadlock
let stuck_waiters t = t.parked
let current_pid t = match t.proc with Some p -> p.p_id | None -> 0

let add_deadlock_reporter t f =
  t.deadlock_reporters <- f :: t.deadlock_reporters

let fresh_resource t kind =
  t.next_resource <- t.next_resource + 1;
  Printf.sprintf "%s#%d" kind t.next_resource

(* The wait token encodes the waiter's daemon bit in its low bit so
   [wait_end] — which runs in the *resumer's* context, where [t.proc]
   is the resumer, not the waiter — can decrement the right counter. *)
let wait_begin t ~resource ~holders =
  let daemon = match t.proc with Some p -> p.p_daemon | None -> false in
  let token = (t.next_token lsl 1) lor Bool.to_int daemon in
  t.next_token <- t.next_token + 1;
  if daemon then t.parked_daemon <- t.parked_daemon + 1
  else t.parked <- t.parked + 1;
  if t.deadlock then begin
    let pid, name, born =
      match t.proc with
      | Some p -> (p.p_id, p.p_name, p.p_born)
      | None -> (0, "callback", t.clock)
    in
    Hashtbl.replace t.waits token
      {
        w_resource = resource ();
        w_holders = holders;
        w_pid = pid;
        w_name = name;
        w_born = born;
        w_daemon = daemon;
        w_since = t.clock;
      }
  end;
  token

let wait_end t token =
  if token land 1 = 1 then t.parked_daemon <- t.parked_daemon - 1
  else t.parked <- t.parked - 1;
  if t.deadlock then Hashtbl.remove t.waits token

(* Walk the wait-for graph over parked processes: an edge goes from a
   waiter to each holder of the resource it waits on that is itself
   parked. Non-daemon waiters are stranded outright at quiescence;
   daemons are reported only when they sit on a cycle. *)
let stranded_waiters t =
  if not t.deadlock then []
  else begin
    let entries = Det.bindings t.waits in
    let waiting = List.map (fun (_, w) -> w.w_pid) entries in
    let adj =
      List.map
        (fun (_, w) ->
          (w.w_pid, List.filter (fun h -> List.mem h waiting) (w.w_holders ())))
        entries
    in
    let succs p =
      match List.assoc_opt p adj with Some l -> l | None -> []
    in
    let reaches_self p0 =
      let rec go visited = function
        | [] -> false
        | x :: rest ->
            if List.mem x visited then go visited rest
            else if List.mem p0 (succs x) then true
            else go (x :: visited) (succs x @ rest)
      in
      go [] (succs p0)
    in
    List.filter_map
      (fun (_, w) ->
        let in_cycle = reaches_self w.w_pid in
        if w.w_daemon && not in_cycle then None
        else
          Some
            {
              resource = w.w_resource;
              proc = w.w_name;
              pid = w.w_pid;
              spawned_at = w.w_born;
              waiting_since = w.w_since;
              holders = w.w_holders ();
              in_cycle;
            })
      entries
  end

let sleep delay = Effect.perform (Sleep delay)
let yield () = sleep 0.0
let suspend register = Effect.perform (Suspend register)

(* Run [f] as a process: a deep handler interprets Sleep/Suspend by parking
   the continuation in the event queue or with the caller's registrar. The
   handler stays attached when the continuation is resumed later, so a
   supervised process that crashes after a suspension is still caught. *)
let exec ?supervise ?(daemon = false) t name f =
  t.next_pid <- t.next_pid + 1;
  t.proc <-
    Some { p_id = t.next_pid; p_name = name; p_born = t.clock; p_daemon = daemon };
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun exn ->
          match supervise with
          | Some on_crash ->
              t.crashed <- (name, exn) :: t.crashed;
              on_crash name exn
          | None -> raise (Process_failure (name, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep delay ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = t.local in
                  let saved_san = t.san_local in
                  let saved_proc = t.proc in
                  schedule t ~delay (fun () ->
                      t.local <- saved;
                      t.san_local <- saved_san;
                      t.proc <- saved_proc;
                      continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = t.local in
                  let saved_san = t.san_local in
                  let saved_proc = t.proc in
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Engine: process resumed twice"
                    else begin
                      resumed := true;
                      schedule t ~delay:0.0 (fun () ->
                          t.local <- saved;
                          t.san_local <- saved_san;
                          t.proc <- saved_proc;
                          continue k ())
                    end
                  in
                  register resume)
          | _ -> None);
    }

(* The sanitizer slot a child starts with: forked from the spawner's via
   [san_fork] when the happens-before checker is armed, shared otherwise
   (in which case it is [None] anyway — nothing installs the slot but the
   checker). Computed at [spawn] time, so the child is ordered after
   everything its parent did before the spawn and concurrent with the
   rest. *)
let child_san t =
  match t.san_fork with None -> t.san_local | Some fork -> fork t.san_local

(* Same shape for the primary slot: forked when a hook is installed
   (trace contexts), shared verbatim otherwise. *)
let child_local t =
  match t.local_fork with None -> t.local | Some fork -> fork t.local

let spawn t ?(name = "process") ?(daemon = false) f =
  (* Children inherit the spawner's local slot (e.g. its trace
     context), so work fanned out by an invocation records into the
     invocation's own trace. *)
  let inherited = child_local t in
  let inherited_san = child_san t in
  schedule t ~delay:0.0 (fun () ->
      t.local <- inherited;
      t.san_local <- inherited_san;
      exec ~daemon t name f)

let spawn_supervised t ?(name = "process") ?(daemon = false)
    ?(on_crash = fun _ _ -> ()) f =
  let inherited = child_local t in
  let inherited_san = child_san t in
  schedule t ~delay:0.0 (fun () ->
      t.local <- inherited;
      t.san_local <- inherited_san;
      exec ~supervise:on_crash ~daemon t name f)

let run ?until t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  let finished = ref false in
  let drained = ref false in
  let restore () =
    t.running <- false;
    t.local <- None;
    t.san_local <- None;
    t.proc <- None;
    current := None
  in
  (try
     current := Some t;
     while not !finished do
       match Heap.peek t.events with
       | None ->
           finished := true;
           drained := true
       | Some ev -> (
           match until with
           | Some limit when ev.time > limit ->
               t.clock <- limit;
               finished := true
           | _ ->
               ignore (Heap.pop t.events);
               t.clock <- ev.time;
               t.executed <- t.executed + 1;
               (* Each event starts with clean slots; process
                  continuations restore their own saved values. *)
               t.local <- None;
               t.san_local <- None;
               t.proc <- None;
               ev.thunk ())
     done;
     (* Natural quiescence (the queue drained, not an [until] cut):
        anything still parked can never be woken — walk the wait-for
        graph and hand each stranded waiter to the reporters. *)
     if !drained && t.deadlock then
       List.iter
         (fun s ->
           List.iter (fun f -> f s) (List.rev t.deadlock_reporters))
         (stranded_waiters t)
   with exn ->
     restore ();
     raise exn);
  restore ()
