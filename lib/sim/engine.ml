type event = { time : float; seq : int; thunk : unit -> unit }

type local = exn

type t = {
  mutable clock : float;
  mutable seq : int;
  events : event Heap.t;
  prng : Prng.t;
  mutable running : bool;
  mutable executed : int;
  (* The process-local slot of the currently-dispatching event: children
     inherit it at [spawn], and it is saved/restored across Sleep and
     Suspend so a process keeps its value over its whole lifetime. *)
  mutable local : local option;
  (* Engine-owned fault-plan slot (same universal-type idiom as [local]):
     the faults library parks its plan here so injection sites anywhere in
     the stack can find it without the engine depending on them. *)
  mutable fault_plan : local option;
  (* Supervised processes that died, newest first. *)
  mutable crashed : (string * exn) list;
}

exception Process_failure of string * exn

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 1L) () =
  {
    clock = 0.0;
    seq = 0;
    events = Heap.create ~cmp:cmp_event;
    prng = Prng.create seed;
    running = false;
    executed = 0;
    local = None;
    fault_plan = None;
    crashed = [];
  }

let now t = t.clock
let rng t = t.prng
let events_executed t = t.executed

let schedule t ~delay thunk =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  t.seq <- t.seq + 1;
  Heap.push t.events { time = t.clock +. delay; seq = t.seq; thunk }

(* The engine currently dispatching an event; the simulator is
   single-threaded so a global is unambiguous. *)
let current : t option ref = ref None

let self () =
  match !current with
  | Some t -> t
  | None -> invalid_arg "Engine.self: no simulation is running"

let self_opt () = !current

let get_local t = t.local
let set_local t v = t.local <- v

let fault_plan t = t.fault_plan
let set_fault_plan t v = t.fault_plan <- v

let failures t = List.rev t.crashed

let sleep delay = Effect.perform (Sleep delay)
let yield () = sleep 0.0
let suspend register = Effect.perform (Suspend register)

(* Run [f] as a process: a deep handler interprets Sleep/Suspend by parking
   the continuation in the event queue or with the caller's registrar. The
   handler stays attached when the continuation is resumed later, so a
   supervised process that crashes after a suspension is still caught. *)
let exec ?supervise t name f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun exn ->
          match supervise with
          | Some on_crash ->
              t.crashed <- (name, exn) :: t.crashed;
              on_crash name exn
          | None -> raise (Process_failure (name, exn)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep delay ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = t.local in
                  schedule t ~delay (fun () ->
                      t.local <- saved;
                      continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let saved = t.local in
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Engine: process resumed twice"
                    else begin
                      resumed := true;
                      schedule t ~delay:0.0 (fun () ->
                          t.local <- saved;
                          continue k ())
                    end
                  in
                  register resume)
          | _ -> None);
    }

let spawn t ?(name = "process") f =
  (* Children inherit the spawner's local slot (e.g. its trace
     context), so work fanned out by an invocation records into the
     invocation's own trace. *)
  let inherited = t.local in
  schedule t ~delay:0.0 (fun () ->
      t.local <- inherited;
      exec t name f)

let spawn_supervised t ?(name = "process") ?(on_crash = fun _ _ -> ()) f =
  let inherited = t.local in
  schedule t ~delay:0.0 (fun () ->
      t.local <- inherited;
      exec ~supervise:on_crash t name f)

let run ?until t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  let finished = ref false in
  let restore () =
    t.running <- false;
    t.local <- None;
    current := None
  in
  (try
     current := Some t;
     while not !finished do
       match Heap.peek t.events with
       | None -> finished := true
       | Some ev -> (
           match until with
           | Some limit when ev.time > limit ->
               t.clock <- limit;
               finished := true
           | _ ->
               ignore (Heap.pop t.events);
               t.clock <- ev.time;
               t.executed <- t.executed + 1;
               (* Each event starts with a clean slot; process
                  continuations restore their own saved value. *)
               t.local <- None;
               ev.thunk ())
     done
   with exn ->
     restore ();
     raise exn);
  restore ()
