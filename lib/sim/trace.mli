(** Causal span tracing over simulated time.

    A diagnostic facility: instrumented code wraps operations in
    {!span}; when no trace is active the wrapper is a no-op.

    Every recorded span carries a stable id, its parent's id and the
    simulated pid that recorded it, so a trace is an exportable causal
    tree (see [Obs.Chrome] for the Chrome trace-event encoding), not
    just a waterfall. Parent links cross process boundaries: a context
    installs an [Engine] fork hook, so a child spawned under an open
    span starts with that span as its inherited parent.

    Traces come in two flavours:

    - {b process-local contexts} ({!start_ctx} / {!stop_ctx}): the
      context rides in the current process's {!Engine} local slot, is
      preserved across suspensions and forked for spawned children —
      each process gets its own open-span stack over the shared span
      sink, so two in-flight invocations record disjoint span trees,
      concurrently;
    - the {b legacy engine-global trace} ({!start} / {!stop}), kept as a
      shim: it records spans from {e every} process that has no local
      context of its own, over one shared stack, which is only
      meaningful when a single logical operation runs at a time
      (e.g. [seussctl trace]).

    Resolution order inside {!span} / {!mark}: the current process's
    context first, then the global shim, else no-op. *)

type span = {
  id : int;  (** unique within its trace, allocated at span entry *)
  parent : int option;
      (** innermost span open when this one started — in the same
          process, or in the spawner at spawn time *)
  pid : int;  (** {!Engine.current_pid} of the recording process *)
  name : string;
  depth : int;  (** nesting level at entry (spawn depth included) *)
  t_start : float;
  t_end : float;
}

type t

(** {1 Concurrent per-process contexts} *)

val start_ctx : Engine.t -> t
(** Create a context and install it as the current process's trace
    (replacing any inherited one). Call from inside a process; children
    spawned afterwards get forked contexts parented to the span open at
    the spawn. *)

val stop_ctx : t -> span list
(** Deactivate and return the spans in start order. Uninstalls the
    context from the calling process's slot if it is still the one
    installed. *)

(** {1 Legacy engine-global trace (shim)} *)

val start : Engine.t -> t
(** Begin recording and install as the global ambient trace.
    @raise Invalid_argument if a global trace is already active. *)

val stop : t -> span list
(** Uninstall and return the spans in start order. *)

(** {1 Recording (either flavour)} *)

val span : string -> (unit -> 'a) -> 'a
(** Record [f]'s simulated time window under [name]. On exception the
    span is still closed — recorded with a [" [failed]"] suffix and its
    id popped, so later siblings keep correct parents — and the
    exception re-raised. No-op without an active trace. *)

val mark : string -> unit
(** A zero-width span. *)

val render : ?unit_scale:float -> ?unit_name:string -> span list -> string
(** A waterfall: start/end/duration columns with indentation, default in
    milliseconds. *)
