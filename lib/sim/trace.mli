(** Lightweight span tracing over simulated time.

    A diagnostic facility: instrumented code wraps operations in
    {!span}; when no trace is active the wrapper is a no-op.

    Traces come in two flavours:

    - {b process-local contexts} ({!start_ctx} / {!stop_ctx}): the
      context rides in the current process's {!Engine} local slot, is
      preserved across suspensions and inherited by spawned children —
      so two in-flight invocations each record their own disjoint span
      tree, concurrently;
    - the {b legacy engine-global trace} ({!start} / {!stop}), kept as a
      shim: it records spans from {e every} process that has no local
      context of its own, which is only meaningful when a single logical
      operation runs at a time (e.g. [seussctl trace]).

    Resolution order inside {!span} / {!mark}: the current process's
    context first, then the global shim, else no-op. *)

type span = {
  name : string;
  depth : int;  (** nesting level at entry *)
  t_start : float;
  t_end : float;
}

type t

(** {1 Concurrent per-process contexts} *)

val start_ctx : Engine.t -> t
(** Create a context and install it as the current process's trace
    (replacing any inherited one). Call from inside a process; children
    spawned afterwards inherit it. *)

val stop_ctx : t -> span list
(** Deactivate and return the spans in start order. Uninstalls the
    context from the calling process's slot if it is still the one
    installed. *)

(** {1 Legacy engine-global trace (shim)} *)

val start : Engine.t -> t
(** Begin recording and install as the global ambient trace.
    @raise Invalid_argument if a global trace is already active. *)

val stop : t -> span list
(** Uninstall and return the spans in start order. *)

(** {1 Recording (either flavour)} *)

val span : string -> (unit -> 'a) -> 'a
(** Record [f]'s simulated time window under [name] (including on
    exception, suffixed [" [failed]"]). No-op without an active trace. *)

val mark : string -> unit
(** A zero-width span. *)

val render : ?unit_scale:float -> ?unit_name:string -> span list -> string
(** A waterfall: start/end/duration columns with indentation, default in
    milliseconds. *)
