(** Happens-before schedule sanitizer.

    Tracks cross-process access to registered shared cells and reports
    pairs that are unsynchronized *at the same simulated timestamp* —
    precisely the accesses whose relative order the tie shuffler
    ({!Engine.create}'s [tie_seed]) can permute. Accesses separated by
    simulated time are serialized by the clock and never reported.

    Ordering edges: process spawn (child after parent's history at the
    spawn point) and release→acquire pairs through the blocking
    primitives ({!Semaphore}, {!Channel}, {!Ivar}), which each carry a
    {!sync} record. Edges compose via vector clocks.

    Dormant (the default — no {!enable} on the engine), every hook is a
    no-op and the run is bit-identical to a build without the checker. *)

type state

val enable : Engine.t -> state
(** Arm the checker on [engine] (idempotent). Must be called before the
    processes under test are spawned so spawn edges are recorded. *)

val enabled : Engine.t -> bool

type kind = Write_write | Read_write

val kind_name : kind -> string
(** ["write/write"] or ["read/write"]. *)

type race = {
  cell : string;
  kind : kind;
  time : float;  (** simulated instant of the colliding pair *)
  first_pid : int;  (** process that accessed first in executed order *)
  second_pid : int;
}

val add_reporter : Engine.t -> (race -> unit) -> unit
(** Also deliver each race as it is found (e.g. to emit a typed [Obs]
    event). Reporters accumulate: every registered reporter receives
    every subsequent race, so each node env on a shared engine can log
    races to its own timeline. Races found before any reporter is
    registered remain visible via {!races} only.
    @raise Invalid_argument if the checker is not enabled. *)

val races : Engine.t -> race list
(** Races found so far, oldest first; [[]] when not enabled. *)

val race_count : Engine.t -> int

(** {1 Registered cells} *)

type cell

val cell : name:string -> cell
(** A shared cell under watch. Creation is engine-independent and free;
    accesses only record when the running engine has the checker
    enabled. *)

val cell_name : cell -> string

val read : cell -> unit
(** Record that the calling process read the cell. *)

val write : cell -> unit
(** Record that the calling process wrote the cell. *)

(** {1 Sync edges (for blocking-primitive implementations)} *)

type sync

val make_sync : unit -> sync

val signal : sync -> unit
(** The caller releases/sends/fills: publish its history on the object. *)

val observe : sync -> unit
(** The caller acquired/received/read: join the object's published
    history into its own. *)
