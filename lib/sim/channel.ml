type 'a t = {
  items : 'a Queue.t;
  (* Each waiter is woken at most once; a woken receiver re-checks the
     queue because an item can be consumed by a non-blocked receiver that
     runs first at the same timestamp. *)
  readers : (unit -> unit) Queue.t;
  (* Happens-before edge carrier: send publishes, a successful receive
     observes (no-op unless the schedule sanitizer is armed). *)
  hb : Hb.sync;
  (* Deadlock-sanitizer display name, assigned on first armed wait. *)
  mutable rname : string;
}

let create () =
  {
    items = Queue.create ();
    readers = Queue.create ();
    hb = Hb.make_sync ();
    rname = "";
  }

let resource t e =
  if String.equal t.rname "" then t.rname <- Engine.fresh_resource e "channel";
  t.rname

let send t x =
  Hb.signal t.hb;
  Queue.add x t.items;
  match Queue.take_opt t.readers with
  | Some resume -> resume ()
  | None -> ()

let try_recv t =
  match Queue.take_opt t.items with
  | Some x ->
      Hb.observe t.hb;
      Some x
  | None -> None

let rec recv t =
  match try_recv t with
  | Some x -> x
  | None ->
      let e = Engine.self () in
      let tok =
        Engine.wait_begin e
          ~resource:(fun () -> resource t e)
          ~holders:(fun () -> [])
      in
      Engine.suspend (fun resume ->
          Queue.add
            (fun () ->
              Engine.wait_end e tok;
              resume ())
            t.readers);
      (* An item can be stolen at the same timestamp; re-parking takes a
         fresh wait token. *)
      recv t

let recv_timeout t ~timeout =
  match try_recv t with
  | Some x -> Some x
  | None ->
      let deadline = Engine.now (Engine.self ()) +. timeout in
      let rec wait () =
        let race : [ `Ready | `Timeout ] Ivar.t = Ivar.create () in
        let engine = Engine.self () in
        let remaining = deadline -. Engine.now engine in
        if remaining < 0.0 then try_recv t
        else begin
          Engine.schedule engine ~delay:remaining (fun () ->
              ignore (Ivar.try_fill race `Timeout));
          Queue.add (fun () -> ignore (Ivar.try_fill race `Ready)) t.readers;
          match Ivar.read race with
          | `Timeout -> try_recv t
          | `Ready -> (
              match try_recv t with
              | Some x -> Some x
              | None -> wait () (* item stolen at same timestamp; re-arm *))
        end
      in
      wait ()

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
