type result = {
  base_no_ao_bytes : int64;
  base_ao_bytes : int64;
  fn_no_ao_bytes : int64;
  fn_ao_bytes : int64;
  cold : Stats.Summary.digest;
  warm : Stats.Summary.digest;
  hot : Stats.Summary.digest;
  cold_pages : float;
  warm_pages : float;
  hot_pages : float;
  (* Per-phase latency splits for each path, derived from the node's
     structured event log (not re-timed in the experiment). *)
  cold_phases : Obs.Breakdown.phase_means option;
  warm_phases : Obs.Breakdown.phase_means option;
  hot_phases : Obs.Breakdown.phase_means option;
  (* Total-latency tail percentiles per path, from the same log. *)
  cold_tails : Obs.Breakdown.tails option;
  warm_tails : Obs.Breakdown.tails option;
  hot_tails : Obs.Breakdown.tails option;
}

let nop_source = Platform.Workloads.source_of_action Platform.Workloads.nop

let nop_fn i =
  {
    Seuss.Node.fn_id = Printf.sprintf "nop-%d" i;
    runtime = Unikernel.Image.Node;
    source = nop_source;
  }

(* Snapshot sizes at one AO level: base snapshot total, NOP function
   snapshot diff. *)
let snapshot_sizes ~seed ao =
  Harness.run_sim ~seed (fun engine ->
      let env =
        Harness.make_seuss_env
          ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 4096))
          engine
      in
      let config = { Seuss.Config.default with Seuss.Config.ao } in
      let node = Harness.seuss_node ~config env in
      (match Seuss.Node.invoke node (nop_fn 0) ~args:"{}" with
      | Ok _, _ -> ()
      | Error _, _ -> failwith "Table1: NOP invocation failed");
      let base =
        Option.get (Seuss.Node.base_snapshot node Unikernel.Image.Node)
      in
      let fn_snap = Option.get (Seuss.Node.function_snapshot node "nop-0") in
      (Seuss.Snapshot.total_bytes base, Seuss.Snapshot.diff_bytes fn_snap))

let run ?(invocations = 475) ?(seed = 7L) () =
  let base_no_ao_bytes, fn_no_ao_bytes =
    snapshot_sizes ~seed Seuss.Config.Ao_none
  in
  let base_ao_bytes, fn_ao_bytes = snapshot_sizes ~seed Seuss.Config.Ao_full in
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env engine in
      let bd = Obs.Breakdown.attach env.Seuss.Osenv.log in
      let node = Harness.seuss_node env in
      let cold = Stats.Summary.create ()
      and warm = Stats.Summary.create ()
      and hot = Stats.Summary.create () in
      let cold_pages = ref 0.0
      and warm_pages = ref 0.0
      and hot_pages = ref 0.0 in
      let timed summary fn expected_path =
        let t0 = Sim.Engine.now engine in
        (match Seuss.Node.invoke node fn ~args:"{}" with
        | Ok _, path when path = expected_path ->
            Stats.Summary.add summary (Sim.Engine.now engine -. t0)
        | Ok _, _ -> failwith "Table1: unexpected invocation path"
        | Error _, _ -> failwith "Table1: invocation failed");
        match Seuss.Node.last_served_uc node with
        | Some uc when Seuss.Uc.status uc = Seuss.Uc.Running ->
            float_of_int (Seuss.Uc.private_pages uc)
        | _ -> 0.0
      in
      for i = 1 to invocations do
        let fn = nop_fn i in
        cold_pages := !cold_pages +. timed cold fn Seuss.Node.Cold;
        (* Hot: the cold invocation left an idle UC. *)
        let before =
          match Seuss.Node.last_served_uc node with
          | Some uc -> float_of_int (Seuss.Uc.private_pages uc)
          | None -> 0.0
        in
        let after = timed hot fn Seuss.Node.Hot in
        hot_pages := !hot_pages +. (after -. before);
        (* Warm: force redeployment from the function snapshot. *)
        Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id;
        warm_pages := !warm_pages +. timed warm fn Seuss.Node.Warm;
        (* Keep the idle cache from accumulating 475 functions. *)
        Seuss.Node.drop_idle node ~fn_id:fn.Seuss.Node.fn_id
      done;
      let n = float_of_int invocations in
      {
        base_no_ao_bytes;
        base_ao_bytes;
        fn_no_ao_bytes;
        fn_ao_bytes;
        cold = Stats.Summary.digest cold;
        warm = Stats.Summary.digest warm;
        hot = Stats.Summary.digest hot;
        cold_pages = !cold_pages /. n;
        warm_pages = !warm_pages /. n;
        hot_pages = !hot_pages /. n;
        cold_phases = Obs.Breakdown.per_path bd Obs.Event.Cold;
        warm_phases = Obs.Breakdown.per_path bd Obs.Event.Warm;
        hot_phases = Obs.Breakdown.per_path bd Obs.Event.Hot;
        cold_tails = Obs.Breakdown.tails bd Obs.Event.Cold;
        warm_tails = Obs.Breakdown.tails bd Obs.Event.Warm;
        hot_tails = Obs.Breakdown.tails bd Obs.Event.Hot;
      })

let phase_split = function
  | None -> "n/a"
  | Some (p : Obs.Breakdown.phase_means) ->
      Printf.sprintf "%.2f / %.2f / %.2f / %.2f ms"
        (p.Obs.Breakdown.deploy *. 1e3)
        (p.Obs.Breakdown.import *. 1e3)
        (p.Obs.Breakdown.run *. 1e3)
        (p.Obs.Breakdown.queue *. 1e3)

let tail_split = function
  | None -> "n/a"
  | Some (t : Obs.Breakdown.tails) ->
      Printf.sprintf "%.2f / %.2f / %.2f ms"
        (t.Obs.Breakdown.p50 *. 1e3)
        (t.Obs.Breakdown.p99 *. 1e3)
        (t.Obs.Breakdown.p999 *. 1e3)

let render r =
  let mb_f pages = Report.mb_of_pages (int_of_float pages) in
  Report.comparison ~title:"Table 1: SEUSS microbenchmarks"
    ~note:
      "Latency/footprint rows measured over 475 NOP invocations per path\n\
       (node-side, shim and control plane excluded, AO enabled).\n\
       Phase splits (deploy / import / run / queue) are per-invocation\n\
       means derived from the node's structured event log.\n"
    [
      {
        Report.label = "Node.js driver snapshot (no AO)";
        paper = "109.6 MB";
        measured = Report.mb r.base_no_ao_bytes;
      };
      {
        Report.label = "Node.js driver snapshot (after AO)";
        paper = "114.5 MB";
        measured = Report.mb r.base_ao_bytes;
      };
      {
        Report.label = "NOP function snapshot (no AO)";
        paper = "4.8 MB";
        measured = Report.mb r.fn_no_ao_bytes;
      };
      {
        Report.label = "NOP function snapshot (after AO)";
        paper = "2.0 MB";
        measured = Report.mb r.fn_ao_bytes;
      };
      {
        Report.label = "Cold start latency";
        paper = "7.5 ms";
        measured = Report.ms r.cold.Stats.Summary.mean;
      };
      {
        Report.label = "Warm start latency";
        paper = "3.5 ms";
        measured = Report.ms r.warm.Stats.Summary.mean;
      };
      {
        Report.label = "Hot start latency";
        paper = "0.8 ms";
        measured = Report.ms r.hot.Stats.Summary.mean;
      };
      {
        Report.label = "Cold phase split (deploy/import/run/queue)";
        paper = "(event log)";
        measured = phase_split r.cold_phases;
      };
      {
        Report.label = "Warm phase split (deploy/import/run/queue)";
        paper = "(event log)";
        measured = phase_split r.warm_phases;
      };
      {
        Report.label = "Hot phase split (deploy/import/run/queue)";
        paper = "(event log)";
        measured = phase_split r.hot_phases;
      };
      {
        Report.label = "Cold latency tails (p50/p99/p999)";
        paper = "(event log)";
        measured = tail_split r.cold_tails;
      };
      {
        Report.label = "Warm latency tails (p50/p99/p999)";
        paper = "(event log)";
        measured = tail_split r.warm_tails;
      };
      {
        Report.label = "Hot latency tails (p50/p99/p999)";
        paper = "(event log)";
        measured = tail_split r.hot_tails;
      };
      {
        Report.label = "Cold start footprint (pages copied)";
        paper = "(Table 1)";
        measured = Printf.sprintf "%.0f pages (%s)" r.cold_pages (mb_f r.cold_pages);
      };
      {
        Report.label = "Warm start footprint (pages copied)";
        paper = "(Table 1)";
        measured = Printf.sprintf "%.0f pages (%s)" r.warm_pages (mb_f r.warm_pages);
      };
      {
        Report.label = "Hot start footprint (pages copied)";
        paper = "(Table 1)";
        measured = Printf.sprintf "%.0f pages (%s)" r.hot_pages (mb_f r.hot_pages);
      };
    ]
