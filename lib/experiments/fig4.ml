type point = {
  set_size : int;
  throughput : float;
  errors : int;
  mean_latency : float;
  breakdown : Obs.Breakdown.phase_means option;
      (** per-phase means from the node's event log; [None] for the
          Linux baseline, which emits no node events *)
  tails : Obs.Breakdown.tails option;
      (** node-side total-latency tail percentiles, same provenance *)
}

type result = { seuss : point list; linux : point list }

let default_set_sizes = [ 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384 ]

let trial_lengths m =
  let measured = min (max 1024 (2 * m)) 6144 in
  let warmup = min 256 (measured / 4) in
  (warmup + measured, warmup)

let run_trial ~seed ~client_threads ~make_controller m =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env engine in
      let bd = Obs.Breakdown.attach env.Seuss.Osenv.log in
      let controller = make_controller env in
      let invocations, warmup = trial_lengths m in
      let r =
        Platform.Loadgen.run
          ~invoke:(fun ~fn_index ->
            Platform.Controller.invoke controller
              {
                Platform.Controller.fn_id = Printf.sprintf "fn-%d" fn_index;
                action = Platform.Workloads.nop;
              })
          {
            Platform.Loadgen.invocations;
            fn_set_size = m;
            client_threads;
            seed;
            warmup;
          }
      in
      {
        set_size = m;
        throughput = r.Platform.Loadgen.throughput;
        errors = r.Platform.Loadgen.errors;
        mean_latency =
          (if Stats.Summary.count r.Platform.Loadgen.latencies > 0 then
             Stats.Summary.mean r.Platform.Loadgen.latencies
           else 0.0);
        breakdown = Obs.Breakdown.overall bd;
        tails = Obs.Breakdown.overall_tails bd;
      })

let run ?(set_sizes = default_set_sizes) ?(client_threads = 32) ?(seed = 21L)
    () =
  let series make =
    List.map (fun m -> run_trial ~seed ~client_threads ~make_controller:make m) set_sizes
  in
  let seuss =
    series (fun env -> fst (Harness.seuss_controller env))
  in
  let linux =
    series (fun env -> fst (Harness.linux_controller env))
  in
  { seuss; linux }

let phase_ms sel = function
  | None -> "-"
  | Some (p : Obs.Breakdown.phase_means) -> Printf.sprintf "%.2f" (sel p *. 1e3)

let tail_ms sel = function
  | None -> "-"
  | Some (t : Obs.Breakdown.tails) -> Printf.sprintf "%.2f" (sel t *. 1e3)

let render r =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("Set size", Stats.Tablefmt.Right);
          ("SEUSS req/s", Stats.Tablefmt.Right);
          ("Linux req/s", Stats.Tablefmt.Right);
          ("Speedup", Stats.Tablefmt.Right);
          ("deploy ms", Stats.Tablefmt.Right);
          ("import ms", Stats.Tablefmt.Right);
          ("run ms", Stats.Tablefmt.Right);
          ("queue ms", Stats.Tablefmt.Right);
          ("p99 ms", Stats.Tablefmt.Right);
          ("p999 ms", Stats.Tablefmt.Right);
          ("SEUSS err", Stats.Tablefmt.Right);
          ("Linux err", Stats.Tablefmt.Right);
        ]
  in
  List.iter2
    (fun s l ->
      Stats.Tablefmt.add_row table
        [
          string_of_int s.set_size;
          Printf.sprintf "%.1f" s.throughput;
          Printf.sprintf "%.1f" l.throughput;
          Printf.sprintf "%.1fx" (s.throughput /. Float.max 0.01 l.throughput);
          phase_ms (fun p -> p.Obs.Breakdown.deploy) s.breakdown;
          phase_ms (fun p -> p.Obs.Breakdown.import) s.breakdown;
          phase_ms (fun p -> p.Obs.Breakdown.run) s.breakdown;
          phase_ms (fun p -> p.Obs.Breakdown.queue) s.breakdown;
          tail_ms (fun t -> t.Obs.Breakdown.p99) s.tails;
          tail_ms (fun t -> t.Obs.Breakdown.p999) s.tails;
          string_of_int s.errors;
          string_of_int l.errors;
        ])
    r.seuss r.linux;
  let plot =
    Stats.Asciiplot.create ~xscale:Stats.Asciiplot.Log
      ~yscale:Stats.Asciiplot.Log
      ~title:"Figure 4: OpenWhisk throughput vs unique-function set size"
      ~xlabel:"set size" ~ylabel:"req/s" ()
  in
  let pts sel series =
    List.map (fun p -> (float_of_int p.set_size, sel p)) series
  in
  Stats.Asciiplot.add_series plot ~label:"SEUSS" ~mark:'s'
    (pts (fun p -> p.throughput) r.seuss);
  Stats.Asciiplot.add_series plot ~label:"Linux" ~mark:'L'
    (pts (fun p -> p.throughput) r.linux);
  let last_ratio =
    match (List.rev r.seuss, List.rev r.linux) with
    | s :: _, l :: _ -> s.throughput /. Float.max 0.01 l.throughput
    | _ -> 0.0
  in
  Printf.sprintf
    "%s%s\n%s\nPaper: Linux ~21%% faster at the smallest sets (shim hop);\n\
     SEUSS up to 52x faster on the mostly-unique workload.\n\
     Phase columns: SEUSS node-side per-invocation means derived from\n\
     the structured event log (deploy+import+run = service; queue is the\n\
     residual); p99/p999 are total-latency tails from the same log\n\
     (log-binned, ~8%% quantisation). Measured speedup at the largest\n\
     set: %.1fx\n"
    (Report.heading "Figure 4: platform throughput")
    (Stats.Tablefmt.render table)
    (Stats.Asciiplot.render plot)
    last_ratio

let write_csv ~path r =
  Report.write_csv ~path
    ~header:
      [
        "set_size"; "seuss_rps"; "linux_rps"; "seuss_errors"; "linux_errors";
        "seuss_deploy_ms"; "seuss_import_ms"; "seuss_run_ms"; "seuss_queue_ms";
        "seuss_p50_ms"; "seuss_p90_ms"; "seuss_p99_ms"; "seuss_p999_ms";
      ]
    (List.map2
       (fun s l ->
         [
           string_of_int s.set_size;
           Printf.sprintf "%.2f" s.throughput;
           Printf.sprintf "%.2f" l.throughput;
           string_of_int s.errors;
           string_of_int l.errors;
           phase_ms (fun p -> p.Obs.Breakdown.deploy) s.breakdown;
           phase_ms (fun p -> p.Obs.Breakdown.import) s.breakdown;
           phase_ms (fun p -> p.Obs.Breakdown.run) s.breakdown;
           phase_ms (fun p -> p.Obs.Breakdown.queue) s.breakdown;
           tail_ms (fun t -> t.Obs.Breakdown.p50) s.tails;
           tail_ms (fun t -> t.Obs.Breakdown.p90) s.tails;
           tail_ms (fun t -> t.Obs.Breakdown.p99) s.tails;
           tail_ms (fun t -> t.Obs.Breakdown.p999) s.tails;
         ])
       r.seuss r.linux)
