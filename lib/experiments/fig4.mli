(** Figure 4 — OpenWhisk platform throughput vs. unique-function set
    size, SEUSS node vs. Linux node.

    Each trial doubles the set size M (paper: 64 … 65536); 32 client
    threads send a continuous stream of NOP invocations; throughput is
    measured after a warmup prefix. Every invocation is "logically
    unique" (distinct function id, same NOP body). Each trial runs on a
    fresh platform deployment. The stemcell cache is disabled on Linux
    (as in the paper's throughput runs) and its container cache is
    limited to 1024. *)

type point = {
  set_size : int;
  throughput : float;  (** successful requests/s *)
  errors : int;
  mean_latency : float;
  breakdown : Obs.Breakdown.phase_means option;
      (** node-side deploy/import/run/queue means derived from the
          structured event log; [None] for the Linux baseline *)
  tails : Obs.Breakdown.tails option;
      (** node-side total-latency p50/p90/p99/p999, same provenance *)
}

type result = { seuss : point list; linux : point list }

val default_set_sizes : int list
(** 64 … 16384 (the full 65536 is available via [~set_sizes]; see
    DESIGN.md's scaling note). *)

val run :
  ?set_sizes:int list ->
  ?client_threads:int ->
  ?seed:int64 ->
  unit ->
  result

val render : result -> string
(** Comparison table plus an ASCII plot of both throughput curves. *)

val write_csv : path:string -> result -> unit
(** Columns: set_size, seuss_rps, linux_rps, seuss_errors, linux_errors,
    plus the SEUSS deploy/import/run/queue means and p50/p90/p99/p999
    tails (ms). *)
