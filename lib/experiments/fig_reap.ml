(* fig_reap (extension): REAP-style working-set prefault on the warm
   path (Ustiugov et al., ASPLOS '21, applied to SEUSS snapshot deploys).

   Two arms run the same workload on a fresh node from the same seed:
   prefault off (every warm deploy demand-faults its pages one trap at a
   time) and prefault on (the first warm invocation per function records
   its faulted vpns; every later deploy batch-installs them). The idle-UC
   cache is disabled so every repeat takes the warm path. Per arm the
   figure reports warm latency, demand-fault counts, prefault batch
   sizes, and the per-invocation fault-handling core time; the headline
   number is the on-vs-off reduction of that fault-handling time. The
   first warm round (the recording round) is excluded from measurement
   in both arms so the arms stay comparable. *)

type arm = {
  prefault : bool;
  warm_invocations : int;
  mean_ms : float;
  p99_ms : float;
  p999_ms : float;
  cow_faults : int;
  zero_fills : int;
  prefault_batches : int;
  prefault_pages : int;
  prefault_cow : int;
  prefault_zero : int;
  fault_us : float;
      (* per-warm-invocation fault-handling core time, microseconds:
         demand faults at full (trap-inclusive) cost plus the batched
         prefault charge *)
}

type result = {
  functions : int;
  rounds : int;
  seed : int64;
  off : arm;
  on_ : arm;
  reduction_pct : float;
}

let reap_fn k =
  {
    Seuss.Node.fn_id = Printf.sprintf "reap-%d" k;
    runtime = Unikernel.Image.Node;
    source = Printf.sprintf "function main(args) { return {fn: %d}; }" k;
  }

let invoke_expect node fn ~path =
  let result, got = Seuss.Node.invoke node fn ~args:"{}" in
  (match result with
  | Ok _ -> ()
  | Error _ ->
      failwith
        (Printf.sprintf "fig_reap: invocation of %s failed"
           fn.Seuss.Node.fn_id));
  if got <> path then
    failwith
      (Printf.sprintf "fig_reap: %s took an unexpected path"
         fn.Seuss.Node.fn_id)

let run_arm ~functions ~rounds ~seed ~prefault =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env engine in
      let config =
        {
          Seuss.Config.default with
          prefault_working_set = prefault;
          (* every repeat must redeploy from the function snapshot *)
          cache_idle_ucs = false;
        }
      in
      let node = Seuss.Node.create ~config env in
      Seuss.Node.start node;
      let fns = List.init functions reap_fn in
      (* Cold round: build the function snapshots. *)
      List.iter (fun fn -> invoke_expect node fn ~path:Seuss.Node.Cold) fns;
      (* Recording round (a plain warm round when prefault is off). *)
      List.iter (fun fn -> invoke_expect node fn ~path:Seuss.Node.Warm) fns;
      (* Measured rounds: snapshot the fault counters and collect the
         prefault batches emitted from here on. *)
      let m = env.Seuss.Osenv.metrics in
      let cow0 = Obs.Metrics.sum_counters m "mem_cow_faults_total"
      and zero0 = Obs.Metrics.sum_counters m "mem_zero_fills_total" in
      let batches = ref 0
      and p_pages = ref 0
      and p_cow = ref 0
      and p_zero = ref 0 in
      Obs.Log.subscribe env.Seuss.Osenv.log (fun r ->
          match r.Obs.Log.ev with
          | Obs.Event.Ws_prefault { pages; cow_copied; zero_filled; _ } ->
              incr batches;
              p_pages := !p_pages + pages;
              p_cow := !p_cow + cow_copied;
              p_zero := !p_zero + zero_filled
          | _ -> ());
      let lat = Stats.Summary.create () in
      for _round = 1 to rounds do
        List.iter
          (fun fn ->
            let t0 = Sim.Engine.now engine in
            invoke_expect node fn ~path:Seuss.Node.Warm;
            Stats.Summary.add lat (Sim.Engine.now engine -. t0))
          fns
      done;
      let cow = Obs.Metrics.sum_counters m "mem_cow_faults_total" - cow0
      and zero = Obs.Metrics.sum_counters m "mem_zero_fills_total" - zero0 in
      let warm = Stats.Summary.count lat in
      let demand_time =
        (float_of_int cow *. Mem.Mconfig.page_copy_time)
        +. (float_of_int zero *. Mem.Mconfig.zero_fill_time)
      and prefault_time =
        (float_of_int !batches *. Seuss.Cost.prefault_fixed)
        +. (float_of_int !p_cow *. Seuss.Cost.prefault_cow_per_page)
        +. (float_of_int !p_zero *. Seuss.Cost.prefault_zero_per_page)
      in
      {
        prefault;
        warm_invocations = warm;
        mean_ms = Stats.Summary.mean lat *. 1e3;
        p99_ms = Stats.Summary.percentile lat 99.0 *. 1e3;
        p999_ms = Stats.Summary.percentile lat 99.9 *. 1e3;
        cow_faults = cow;
        zero_fills = zero;
        prefault_batches = !batches;
        prefault_pages = !p_pages;
        prefault_cow = !p_cow;
        prefault_zero = !p_zero;
        fault_us =
          (if warm = 0 then 0.0
           else (demand_time +. prefault_time) /. float_of_int warm *. 1e6);
      })

let run ?(functions = 8) ?(rounds = 20) ?(seed = 7L) () =
  if functions < 1 then invalid_arg "Fig_reap.run: need at least one function";
  if rounds < 1 then invalid_arg "Fig_reap.run: need at least one round";
  let off = run_arm ~functions ~rounds ~seed ~prefault:false in
  let on_ = run_arm ~functions ~rounds ~seed ~prefault:true in
  let reduction_pct =
    if off.fault_us <= 0.0 then 0.0
    else (off.fault_us -. on_.fault_us) /. off.fault_us *. 100.0
  in
  { functions; rounds; seed; off; on_; reduction_pct }

let arm_to_json a =
  Obs.Json.Obj
    [
      ("prefault", Obs.Json.Bool a.prefault);
      ("warm_invocations", Obs.Json.Int a.warm_invocations);
      ("mean_ms", Obs.Json.Float a.mean_ms);
      ("p99_ms", Obs.Json.Float a.p99_ms);
      ("p999_ms", Obs.Json.Float a.p999_ms);
      ("cow_faults", Obs.Json.Int a.cow_faults);
      ("zero_fills", Obs.Json.Int a.zero_fills);
      ("prefault_batches", Obs.Json.Int a.prefault_batches);
      ("prefault_pages", Obs.Json.Int a.prefault_pages);
      ("prefault_cow", Obs.Json.Int a.prefault_cow);
      ("prefault_zero", Obs.Json.Int a.prefault_zero);
      ("fault_us", Obs.Json.Float a.fault_us);
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("figure", Obs.Json.String "reap");
      ("functions", Obs.Json.Int r.functions);
      ("rounds", Obs.Json.Int r.rounds);
      ("seed", Obs.Json.String (Int64.to_string r.seed));
      ("off", arm_to_json r.off);
      ("on", arm_to_json r.on_);
      ("reduction_pct", Obs.Json.Float r.reduction_pct);
    ]

let render r =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("prefault", Stats.Tablefmt.Left);
          ("warm", Stats.Tablefmt.Right);
          ("mean ms", Stats.Tablefmt.Right);
          ("p99 ms", Stats.Tablefmt.Right);
          ("p999 ms", Stats.Tablefmt.Right);
          ("cow", Stats.Tablefmt.Right);
          ("zero", Stats.Tablefmt.Right);
          ("batched pages", Stats.Tablefmt.Right);
          ("fault us/inv", Stats.Tablefmt.Right);
        ]
  in
  List.iter
    (fun a ->
      Stats.Tablefmt.add_row table
        [
          (if a.prefault then "on" else "off");
          string_of_int a.warm_invocations;
          Printf.sprintf "%.3f" a.mean_ms;
          Printf.sprintf "%.3f" a.p99_ms;
          Printf.sprintf "%.3f" a.p999_ms;
          string_of_int a.cow_faults;
          string_of_int a.zero_fills;
          string_of_int a.prefault_pages;
          Printf.sprintf "%.1f" a.fault_us;
        ])
    [ r.off; r.on_ ];
  Printf.sprintf
    "%s%d functions x %d measured warm rounds per arm (idle-UC cache off; \
     seed %Ld)\nfault-handling time per warm invocation: %.1f us -> %.1f us \
     (%.1f%% reduction)\n\n%s"
    (Report.heading "fig_reap: warm-path working-set prefault (REAP)")
    r.functions r.rounds r.seed r.off.fault_us r.on_.fault_us r.reduction_pct
    (Stats.Tablefmt.render table)

let write_csv ~path r =
  Report.write_csv ~path
    ~header:
      [
        "prefault"; "warm_invocations"; "mean_ms"; "p99_ms"; "p999_ms"; "cow_faults";
        "zero_fills"; "prefault_batches"; "prefault_pages"; "prefault_cow";
        "prefault_zero"; "fault_us";
      ]
    (List.map
       (fun a ->
         [
           (if a.prefault then "on" else "off");
           string_of_int a.warm_invocations;
           Printf.sprintf "%.6f" a.mean_ms;
           Printf.sprintf "%.6f" a.p99_ms;
           Printf.sprintf "%.6f" a.p999_ms;
           string_of_int a.cow_faults;
           string_of_int a.zero_fills;
           string_of_int a.prefault_batches;
           string_of_int a.prefault_pages;
           string_of_int a.prefault_cow;
           string_of_int a.prefault_zero;
           Printf.sprintf "%.6f" a.fault_us;
         ])
       [ r.off; r.on_ ])
