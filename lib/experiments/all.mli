(** Run the complete reproduction: every table and figure, rendered as
    one report. *)

type scale = Quick | Full
(** [Quick] trims counts/ladders for a fast smoke run (a few minutes on
    one core); [Full] uses the paper's parameters (475-invocation
    microbenchmarks, 88 GB density sweeps, 300 s bursts at all three
    periods). *)

val run : ?scale:scale -> ?seed:int64 -> unit -> string
(** Returns the full report text (each section printed as it is
    produced on stderr progress). *)

val registry : (string * string) list
(** Every experiment-producing [seussctl] subcommand, as
    [(name, one-line doc)] — the single source of the CLI's experiment
    docs and of the list printed by [seussctl info]. *)

val doc : string -> string option
(** Look a subcommand's doc up in {!registry}. *)
