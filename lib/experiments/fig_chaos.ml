(* fig_chaos (extension): tail latency and availability of a DR-SEUSS
   cluster as the injected failure rate rises.

   For each rate the same workload runs on a fresh 4-node cluster with
   every fault-plane site armed (crashes much rarer than transients, as
   in production): the figure reports availability — the fraction of
   invocations served, counting degraded local cold starts as served —
   and latency percentiles, plus the recovery actions the cluster took.
   Rate 0.0 is the control arm: no plan draws, identical to a fault-free
   build. The whole sweep is deterministic per seed. *)

type point = {
  rate : float;
  invocations : int;
  served : int;
  errors : int;
  availability : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  remote_fetches : int;
  cluster_colds : int;
  fetch_retries : int;
  failovers : int;
  degraded_colds : int;
  node_crashes : int;
  registry_evictions : int;
  faults_fired : int;
}

type result = {
  nodes : int;
  functions : int;
  calls : int;
  seed : int64;
  points : point list;
  timeline : string;
      (* the highest-rate run's cluster recovery log, as JSONL *)
}

let default_rates = [ 0.0; 0.01; 0.05; 0.1 ]

(* The plan seed is a fixed xor of the run seed (same derivation as the
   harness env hook): arming the plane never draws from the engine
   stream, so the rate-0 arm is bit-identical to an unfaulted run. *)
let plan_seed seed = Int64.logxor seed Harness.fault_seed_xor

(* Whole-node crashes are much rarer than transient faults; an OOM storm
   rarer than a dropped packet. *)
let site_rates rate =
  [
    (Faults.Fault.Uc_kill, rate);
    (Faults.Fault.Capture_fail, rate);
    (Faults.Fault.Oom_storm, rate /. 4.0);
    (Faults.Fault.Net_drop, rate);
    (Faults.Fault.Net_delay, rate);
    (Faults.Fault.Registry_stale, rate);
    (Faults.Fault.Node_crash, rate /. 10.0);
  ]

let chaos_fn k =
  {
    Seuss.Node.fn_id = Printf.sprintf "fn-%d" k;
    runtime = Unikernel.Image.Node;
    source = Printf.sprintf "function main(args) { return {fn: %d}; }" k;
  }

let run_point ~nodes ~functions ~calls ~seed rate =
  Harness.run_sim ~seed (fun engine ->
      let gib = Int64.of_int (Mem.Mconfig.mib 1024) in
      let cluster =
        Cluster.Drseuss.create ~nodes ~budget_per_node:(Int64.mul 4L gib)
          engine
      in
      (* Arm the plane only after boot: chaos measures steady-state
         serving, and injected SYN loss during the nodes' AO handshakes
         would abort startup rather than degrade service. *)
      let plan =
        if rate > 0.0 then begin
          let plan =
            Faults.Fault.make ~seed:(plan_seed seed) ~rates:(site_rates rate)
              engine
          in
          Faults.Fault.install plan;
          Some plan
        end
        else None
      in
      let lat = Stats.Summary.create () in
      let served = ref 0 and errors = ref 0 in
      for i = 0 to calls - 1 do
        let t0 = Sim.Engine.now engine in
        let result, _source =
          Cluster.Drseuss.invoke cluster (chaos_fn (i mod functions)) ~args:"{}"
        in
        Stats.Summary.add lat (Sim.Engine.now engine -. t0);
        match result with Ok _ -> incr served | Error _ -> incr errors
      done;
      let st = Cluster.Drseuss.stats cluster in
      ( {
          rate;
          invocations = calls;
          served = !served;
          errors = !errors;
          availability =
            (if calls = 0 then 1.0
             else float_of_int !served /. float_of_int calls);
          p50_ms = Stats.Summary.percentile lat 50.0 *. 1e3;
          p99_ms = Stats.Summary.percentile lat 99.0 *. 1e3;
          p999_ms = Stats.Summary.percentile lat 99.9 *. 1e3;
          remote_fetches = st.Cluster.Drseuss.remote_fetches;
          cluster_colds = st.Cluster.Drseuss.cluster_colds;
          fetch_retries = st.Cluster.Drseuss.fetch_retries;
          failovers = st.Cluster.Drseuss.failovers;
          degraded_colds = st.Cluster.Drseuss.degraded_colds;
          node_crashes = st.Cluster.Drseuss.node_crashes;
          registry_evictions = st.Cluster.Drseuss.registry_evictions;
          faults_fired =
            (match plan with Some p -> Faults.Fault.fired p | None -> 0);
        },
        Obs.Log.to_jsonl (Cluster.Drseuss.log cluster) ))

let run ?(nodes = 4) ?(functions = 25) ?(calls = 200) ?(rates = default_rates)
    ?(seed = 7L) () =
  if nodes < 1 then invalid_arg "Fig_chaos.run: need at least one node";
  List.iter
    (fun r ->
      if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
        invalid_arg "Fig_chaos.run: rates must be in [0, 1]")
    rates;
  let results =
    List.map (fun rate -> run_point ~nodes ~functions ~calls ~seed rate) rates
  in
  {
    nodes;
    functions;
    calls;
    seed;
    points = List.map fst results;
    timeline =
      (match List.rev results with [] -> "" | (_, tl) :: _ -> tl);
  }

let point_to_json p =
  Obs.Json.Obj
    [
      ("rate", Obs.Json.Float p.rate);
      ("invocations", Obs.Json.Int p.invocations);
      ("served", Obs.Json.Int p.served);
      ("errors", Obs.Json.Int p.errors);
      ("availability", Obs.Json.Float p.availability);
      ("p50_ms", Obs.Json.Float p.p50_ms);
      ("p99_ms", Obs.Json.Float p.p99_ms);
      ("p999_ms", Obs.Json.Float p.p999_ms);
      ("remote_fetches", Obs.Json.Int p.remote_fetches);
      ("cluster_colds", Obs.Json.Int p.cluster_colds);
      ("fetch_retries", Obs.Json.Int p.fetch_retries);
      ("failovers", Obs.Json.Int p.failovers);
      ("degraded_colds", Obs.Json.Int p.degraded_colds);
      ("node_crashes", Obs.Json.Int p.node_crashes);
      ("registry_evictions", Obs.Json.Int p.registry_evictions);
      ("faults_fired", Obs.Json.Int p.faults_fired);
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("figure", Obs.Json.String "chaos");
      ("nodes", Obs.Json.Int r.nodes);
      ("functions", Obs.Json.Int r.functions);
      ("calls", Obs.Json.Int r.calls);
      ("seed", Obs.Json.String (Int64.to_string r.seed));
      ("points", Obs.Json.List (List.map point_to_json r.points));
    ]

let render r =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("fault rate", Stats.Tablefmt.Right);
          ("avail", Stats.Tablefmt.Right);
          ("p50 ms", Stats.Tablefmt.Right);
          ("p99 ms", Stats.Tablefmt.Right);
          ("p999 ms", Stats.Tablefmt.Right);
          ("fetches", Stats.Tablefmt.Right);
          ("retries", Stats.Tablefmt.Right);
          ("failover", Stats.Tablefmt.Right);
          ("degraded", Stats.Tablefmt.Right);
          ("crashes", Stats.Tablefmt.Right);
          ("evicted", Stats.Tablefmt.Right);
          ("fired", Stats.Tablefmt.Right);
        ]
  in
  List.iter
    (fun p ->
      Stats.Tablefmt.add_row table
        [
          Printf.sprintf "%.3f" p.rate;
          Printf.sprintf "%.2f%%" (100.0 *. p.availability);
          Printf.sprintf "%.2f" p.p50_ms;
          Printf.sprintf "%.2f" p.p99_ms;
          Printf.sprintf "%.2f" p.p999_ms;
          string_of_int p.remote_fetches;
          string_of_int p.fetch_retries;
          string_of_int p.failovers;
          string_of_int p.degraded_colds;
          string_of_int p.node_crashes;
          string_of_int p.registry_evictions;
          string_of_int p.faults_fired;
        ])
    r.points;
  Printf.sprintf
    "%s%d-node DR-SEUSS under injected failures: %d calls over %d functions \
     per rate\n(availability counts degraded local cold starts as served; \
     seed %Ld)\n\n%s"
    (Report.heading "fig_chaos: availability and tail latency vs fault rate")
    r.nodes r.calls r.functions r.seed
    (Stats.Tablefmt.render table)

let write_csv ~path r =
  Report.write_csv ~path
    ~header:
      [
        "rate"; "invocations"; "served"; "errors"; "availability"; "p50_ms";
        "p99_ms"; "p999_ms"; "remote_fetches"; "cluster_colds"; "fetch_retries";
        "failovers"; "degraded_colds"; "node_crashes"; "registry_evictions";
        "faults_fired";
      ]
    (List.map
       (fun p ->
         [
           Printf.sprintf "%g" p.rate;
           string_of_int p.invocations;
           string_of_int p.served;
           string_of_int p.errors;
           Printf.sprintf "%.6f" p.availability;
           Printf.sprintf "%.6f" p.p50_ms;
           Printf.sprintf "%.6f" p.p99_ms;
           Printf.sprintf "%.6f" p.p999_ms;
           string_of_int p.remote_fetches;
           string_of_int p.cluster_colds;
           string_of_int p.fetch_retries;
           string_of_int p.failovers;
           string_of_int p.degraded_colds;
           string_of_int p.node_crashes;
           string_of_int p.registry_evictions;
           string_of_int p.faults_fired;
         ])
       r.points)
