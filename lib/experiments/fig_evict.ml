(* fig_evict (extension): snapshot-store hit rate and tail latency vs
   cache budget.

   One Zipf-popularity trace ({!Workload.Trace}) is replayed open-loop
   against a ladder of SEUSS nodes that differ only in
   [Config.snapshot_cache_bytes]: a disarmed baseline (the pre-store
   node, label "off"), several byte budgets small enough that the
   content-addressed store must evict under the configured policy, and
   an effectively unbounded budget that shows pure dedup with no
   eviction pressure. The idle-UC cache is off so every repeat
   invocation redeploys from its function snapshot — a store miss is a
   full cold compile, which is exactly the cliff the sweep measures.
   Per arm the figure reports the store hit rate, dedup ratio, resident
   and peak bytes, eviction count, and client-observed latency
   percentiles; the curves plot hit rate and p99 against the budget.

   Arms build their nodes directly (not via {!Harness.seuss_node}) so
   the SEUSS_SNAP_CACHE env hook cannot collapse the ladder to a single
   budget. Every arm runs in a fresh simulation from the same run seed,
   so the whole sweep is deterministic. *)

type mix = { cold : int; warm : int; hot : int }

type arm = {
  label : string;  (* "off" or the budget, e.g. "4m" *)
  cache_bytes : int64;  (* 0 = store disarmed (baseline) *)
  invocations : int;
  ok : int;
  errors : int;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  hit_rate : float;
      (* armed: store hits / lookups; off: warm / (warm + cold), the
         same quantity measured at the node since every lookup miss is
         served cold *)
  hits : int;
  misses : int;
  evictions : int;
  dedup_ratio : float;  (* 1.0 when the store is off *)
  resident_bytes : int64;
  peak_bytes : int64;
  members : int;
  index_pages : int;
  mix : mix;
}

type result = {
  functions : int;
  alpha : float;
  rate : float;
  horizon : float;
  policy : Seuss.Config.snap_policy;
  seed : int64;
  trace_events : int;
  arms : arm list;
}

(* {1 Environment hooks}

   SEUSS_EVICT_* supply the sweep's default shape (explicit arguments
   override them); unset variables leave the compiled defaults
   untouched, so an unhooked run is bit-identical to one with every
   variable set to its default. *)

let functions_env_var = "SEUSS_EVICT_FUNCTIONS"
let alpha_env_var = "SEUSS_EVICT_ALPHA"
let rps_env_var = "SEUSS_EVICT_RPS"
let hours_env_var = "SEUSS_EVICT_HOURS"
let sizes_env_var = "SEUSS_EVICT_SIZES"
let policy_env_var = "SEUSS_EVICT_POLICY"

let warn_malformed var s =
  Printf.eprintf "fig_evict: ignoring malformed %s %S\n" var s

let env_float var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some v when Float.is_finite v -> v
      | _ ->
          warn_malformed var s;
          default)

let env_int var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None ->
          warn_malformed var s;
          default)

(* Comma-separated budgets with the SEUSS_SNAP_CACHE suffix syntax,
   e.g. SEUSS_EVICT_SIZES=0,2m,4m,16m (0 = the disarmed baseline). *)
let env_sizes var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      let parts = String.split_on_char ',' (String.trim s) in
      let parsed = List.filter_map Harness.parse_bytes parts in
      match parsed with
      | _ when List.length parsed <> List.length parts || parsed = [] ->
          warn_malformed var s;
          default
      | sizes -> sizes)

let env_policy var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      match Seuss.Config.policy_of_name (String.lowercase_ascii s) with
      | Some p -> p
      | None ->
          warn_malformed var s;
          default)

let label_of_bytes b =
  if Int64.equal b 0L then "off"
  else
    let b' = Int64.to_int b in
    let gib = 1024 * 1024 * 1024 and mib = 1024 * 1024 and kib = 1024 in
    if b' mod gib = 0 then Printf.sprintf "%dg" (b' / gib)
    else if b' mod mib = 0 then Printf.sprintf "%dm" (b' / mib)
    else if b' mod kib = 0 then Printf.sprintf "%dk" (b' / kib)
    else Int64.to_string b

(* {1 One arm} *)

let fn_action fn =
  let ms = Workload.Fnset.work_ms fn in
  if ms = 0.0 then Baselines.Backend_intf.Nop
  else Baselines.Backend_intf.Cpu_ms ms

let percentile_ms lat p =
  if Stats.Summary.count lat = 0 then 0.0
  else Stats.Summary.percentile lat p *. 1e3

let run_arm ~seed ~policy trace cache_bytes =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env engine in
      let config =
        {
          Seuss.Config.default with
          (* every repeat must redeploy from the function snapshot *)
          Seuss.Config.cache_idle_ucs = false;
          snapshot_cache_bytes = cache_bytes;
          snapshot_cache_policy = policy;
        }
      in
      let node = Seuss.Node.create ~config env in
      Seuss.Node.start node;
      let shim = Seuss.Shim.create env node in
      let controller =
        Platform.Controller.create env.Seuss.Osenv.engine
          (Platform.Controller.Seuss_backend shim)
      in
      let r =
        Workload.Replay.run
          ~invoke:(fun ~fn ->
            Platform.Controller.invoke_custom controller
              ~fn_id:(Workload.Fnset.fn_id fn) ~action:(fn_action fn)
              ~source:(Workload.Fnset.source fn))
          trace
      in
      let lat = r.Workload.Replay.latencies in
      let st = Seuss.Node.stats node in
      let mix =
        {
          cold = st.Seuss.Node.cold;
          warm = st.Seuss.Node.warm;
          hot = st.Seuss.Node.hot;
        }
      in
      let hits, misses, evictions, dedup, resident, peak, members, index_pages
          =
        match Seuss.Node.snapstore node with
        | Some store ->
            ( Seuss.Snapstore.hits store,
              Seuss.Snapstore.misses store,
              Seuss.Snapstore.evictions store,
              Seuss.Snapstore.dedup_ratio store,
              Seuss.Snapstore.resident_bytes store,
              Seuss.Snapstore.peak_resident_bytes store,
              Seuss.Snapstore.member_count store,
              Seuss.Snapstore.index_pages store )
        | None -> (mix.warm, mix.cold, 0, 1.0, 0L, 0L, 0, 0)
      in
      let hit_rate =
        let lookups = hits + misses in
        if lookups = 0 then 0.0
        else float_of_int hits /. float_of_int lookups
      in
      {
        label = label_of_bytes cache_bytes;
        cache_bytes;
        invocations = r.Workload.Replay.invocations;
        ok = r.Workload.Replay.ok;
        errors = r.Workload.Replay.errors;
        mean_ms = Stats.Summary.mean lat *. 1e3;
        p50_ms = percentile_ms lat 50.0;
        p99_ms = percentile_ms lat 99.0;
        p999_ms = percentile_ms lat 99.9;
        hit_rate;
        hits;
        misses;
        evictions;
        dedup_ratio = dedup;
        resident_bytes = resident;
        peak_bytes = peak;
        members;
        index_pages;
        mix;
      })

(* {1 The sweep} *)

let default_functions = 160
let default_alpha = 1.1
let default_rate = 4.0
let default_hours = 0.25

(* The finite rungs bracket the store's natural footprint for the
   default corpus (~2.2 MiB of indexed runtime pages plus ~40 KiB per
   member): 3m keeps only the hottest handful of functions, 8m most of
   them, 1g everything (dedup with zero evictions). *)
let default_sizes =
  [
    0L;
    Int64.of_int (Mem.Mconfig.mib 3);
    Int64.of_int (Mem.Mconfig.mib 4);
    Int64.of_int (Mem.Mconfig.mib 6);
    Int64.of_int (Mem.Mconfig.mib 8);
    Int64.of_int (Mem.Mconfig.mib 1024);
  ]

let run ?functions ?alpha ?rate ?hours ?sizes ?policy ?(seed = 13L) () =
  let functions =
    match functions with
    | Some f -> f
    | None -> env_int functions_env_var default_functions
  in
  let alpha =
    match alpha with
    | Some a -> a
    | None -> env_float alpha_env_var default_alpha
  in
  let rate =
    match rate with Some r -> r | None -> env_float rps_env_var default_rate
  in
  let hours =
    match hours with
    | Some h -> h
    | None -> env_float hours_env_var default_hours
  in
  let sizes =
    match sizes with Some s -> s | None -> env_sizes sizes_env_var default_sizes
  in
  let policy =
    match policy with
    | Some p -> p
    | None -> env_policy policy_env_var Seuss.Config.Snap_lru
  in
  if functions < 1 then invalid_arg "Fig_evict.run: need at least one function";
  if not (Float.is_finite rate) || rate <= 0.0 then
    invalid_arg "Fig_evict.run: rate must be positive";
  if not (Float.is_finite hours) || hours <= 0.0 then
    invalid_arg "Fig_evict.run: hours must be positive";
  if sizes = [] then invalid_arg "Fig_evict.run: need at least one cache size";
  List.iter
    (fun s ->
      if Int64.compare s 0L < 0 then
        invalid_arg "Fig_evict.run: cache sizes must be >= 0")
    sizes;
  let horizon = hours *. 3600.0 in
  let trace =
    Workload.Trace.synthesize ~functions ~alpha
      ~arrival:(Workload.Arrival.poisson ~rate)
      ~horizon ~seed
  in
  let arms = List.map (run_arm ~seed ~policy trace) sizes in
  {
    functions;
    alpha;
    rate;
    horizon;
    policy;
    seed;
    trace_events = Array.length trace.Workload.Trace.events;
    arms;
  }

(* {1 Reporting} *)

let arm_to_json a =
  Obs.Json.Obj
    [
      ("cache", Obs.Json.String a.label);
      ("cache_bytes", Obs.Json.String (Int64.to_string a.cache_bytes));
      ("invocations", Obs.Json.Int a.invocations);
      ("ok", Obs.Json.Int a.ok);
      ("errors", Obs.Json.Int a.errors);
      ("mean_ms", Obs.Json.Float a.mean_ms);
      ("p50_ms", Obs.Json.Float a.p50_ms);
      ("p99_ms", Obs.Json.Float a.p99_ms);
      ("p999_ms", Obs.Json.Float a.p999_ms);
      ("hit_rate", Obs.Json.Float a.hit_rate);
      ("hits", Obs.Json.Int a.hits);
      ("misses", Obs.Json.Int a.misses);
      ("evictions", Obs.Json.Int a.evictions);
      ("dedup_ratio", Obs.Json.Float a.dedup_ratio);
      ("resident_bytes", Obs.Json.String (Int64.to_string a.resident_bytes));
      ("peak_bytes", Obs.Json.String (Int64.to_string a.peak_bytes));
      ("members", Obs.Json.Int a.members);
      ("index_pages", Obs.Json.Int a.index_pages);
      ("cold", Obs.Json.Int a.mix.cold);
      ("warm", Obs.Json.Int a.mix.warm);
      ("hot", Obs.Json.Int a.mix.hot);
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("figure", Obs.Json.String "evict");
      ("functions", Obs.Json.Int r.functions);
      ("alpha", Obs.Json.Float r.alpha);
      ("rate_rps", Obs.Json.Float r.rate);
      ("horizon_s", Obs.Json.Float r.horizon);
      ("policy", Obs.Json.String (Seuss.Config.policy_name r.policy));
      ("seed", Obs.Json.String (Int64.to_string r.seed));
      ("trace_events", Obs.Json.Int r.trace_events);
      ("arms", Obs.Json.List (List.map arm_to_json r.arms));
    ]

let mib_of_bytes b = Int64.to_float b /. (1024.0 *. 1024.0)

let render r =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("cache", Stats.Tablefmt.Left);
          ("hit %", Stats.Tablefmt.Right);
          ("dedup", Stats.Tablefmt.Right);
          ("resident MiB", Stats.Tablefmt.Right);
          ("peak MiB", Stats.Tablefmt.Right);
          ("members", Stats.Tablefmt.Right);
          ("evict", Stats.Tablefmt.Right);
          ("p50 ms", Stats.Tablefmt.Right);
          ("p99 ms", Stats.Tablefmt.Right);
          ("p999 ms", Stats.Tablefmt.Right);
          ("cold/warm/hot", Stats.Tablefmt.Right);
        ]
  in
  List.iter
    (fun a ->
      Stats.Tablefmt.add_row table
        [
          a.label;
          Printf.sprintf "%.1f" (a.hit_rate *. 100.0);
          (if Int64.equal a.cache_bytes 0L then "-"
           else Printf.sprintf "%.2f" a.dedup_ratio);
          (if Int64.equal a.cache_bytes 0L then "-"
           else Printf.sprintf "%.2f" (mib_of_bytes a.resident_bytes));
          (if Int64.equal a.cache_bytes 0L then "-"
           else Printf.sprintf "%.2f" (mib_of_bytes a.peak_bytes));
          string_of_int a.members;
          string_of_int a.evictions;
          Printf.sprintf "%.2f" a.p50_ms;
          Printf.sprintf "%.2f" a.p99_ms;
          Printf.sprintf "%.2f" a.p999_ms;
          Printf.sprintf "%d/%d/%d" a.mix.cold a.mix.warm a.mix.hot;
        ])
    r.arms;
  (* The curves only make sense over the finite armed rungs. *)
  let finite = List.filter (fun a -> Int64.compare a.cache_bytes 0L > 0) r.arms in
  let curves =
    if List.length finite < 2 then ""
    else
      let hit_plot =
        Stats.Asciiplot.create ~title:"store hit rate vs cache budget"
          ~xlabel:"cache MiB" ~ylabel:"hit %" ()
      in
      Stats.Asciiplot.add_series hit_plot ~label:"hit %" ~mark:'H'
        (List.map
           (fun a -> (mib_of_bytes a.cache_bytes, a.hit_rate *. 100.0))
           finite);
      let p99_plot =
        Stats.Asciiplot.create ~yscale:Stats.Asciiplot.Log
          ~title:"p99 latency vs cache budget" ~xlabel:"cache MiB"
          ~ylabel:"p99 ms" ()
      in
      Stats.Asciiplot.add_series p99_plot ~label:"p99 ms" ~mark:'*'
        (List.map (fun a -> (mib_of_bytes a.cache_bytes, a.p99_ms)) finite);
      Stats.Asciiplot.render hit_plot ^ "\n" ^ Stats.Asciiplot.render p99_plot
  in
  Printf.sprintf
    "%sOpen-loop Zipf(%.2f) trace over %d functions at %g req/s, %.2f \
     simulated hours per arm\n\
     (idle-UC cache off: a store miss is a full cold compile; policy %s; \
     \"off\" = store disarmed; seed %Ld)\n\n\
     %s\n%s"
    (Report.heading "fig_evict: snapshot-store eviction sweep")
    r.alpha r.functions r.rate (r.horizon /. 3600.0)
    (Seuss.Config.policy_name r.policy)
    r.seed
    (Stats.Tablefmt.render table)
    curves

let write_csv ~path r =
  Report.write_csv ~path
    ~header:
      [
        "cache"; "cache_bytes"; "invocations"; "ok"; "errors"; "mean_ms";
        "p50_ms"; "p99_ms"; "p999_ms"; "hit_rate"; "hits"; "misses";
        "evictions"; "dedup_ratio"; "resident_bytes"; "peak_bytes"; "members";
        "index_pages"; "cold"; "warm"; "hot";
      ]
    (List.map
       (fun a ->
         [
           a.label;
           Int64.to_string a.cache_bytes;
           string_of_int a.invocations;
           string_of_int a.ok;
           string_of_int a.errors;
           Printf.sprintf "%.6f" a.mean_ms;
           Printf.sprintf "%.6f" a.p50_ms;
           Printf.sprintf "%.6f" a.p99_ms;
           Printf.sprintf "%.6f" a.p999_ms;
           Printf.sprintf "%.6f" a.hit_rate;
           string_of_int a.hits;
           string_of_int a.misses;
           string_of_int a.evictions;
           Printf.sprintf "%.6f" a.dedup_ratio;
           Int64.to_string a.resident_bytes;
           Int64.to_string a.peak_bytes;
           string_of_int a.members;
           string_of_int a.index_pages;
           string_of_int a.mix.cold;
           string_of_int a.mix.warm;
           string_of_int a.mix.hot;
         ])
       r.arms)
