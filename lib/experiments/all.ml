type scale = Quick | Full

(* One row per experiment-producing seussctl subcommand: the single
   source of the CLI docs (seussctl derives each Cmd.info from here and
   refuses to start if a row has no subcommand) and of the experiment
   list printed by `seussctl info`. *)
let registry =
  [
    ("table1", "Table 1: SEUSS microbenchmarks");
    ("table2", "Table 2: latency across AO levels");
    ("table3", "Table 3: cache density and creation rates");
    ("fig4", "Figure 4: platform throughput vs set size");
    ("fig5", "Figure 5: end-to-end latency percentiles");
    ("burst", "Figures 6-8: burst resiliency");
    ("load", "Extension: open-loop tail latency vs offered load (Zipf/MMPP \
              trace replay against SEUSS and the container baselines)");
    ("ablations", "Design-choice ablations (DESIGN.md)");
    ("drseuss", "Extension: distributed snapshot cache (paper S9)");
    ( "chaos",
      "Extension: DR-SEUSS availability and tail latency under \
       deterministic fault injection" );
    ( "reap",
      "Extension: REAP-style working-set record & prefault on warm \
       snapshot deploys, on vs off" );
    ( "evict",
      "Extension: content-addressed snapshot store under memory \
       pressure — hit rate, dedup ratio and tail latency vs cache \
       budget" );
    ("ksm", "Ablation: retroactive dedup (KSM) vs snapshot stacks");
    ("autoao", "Extension: black-box discovery of AO opportunities (paper S9)");
  ]

let doc name = List.assoc_opt name registry

let progress fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("[experiments] " ^ s);
      flush stderr)
    fmt

let run ?(scale = Quick) ?(seed = 7L) () =
  let buf = Buffer.create 16_384 in
  let add s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let t1_invocations = match scale with Quick -> 60 | Full -> 475 in
  progress "Table 1 (microbenchmarks, %d invocations/path)..." t1_invocations;
  add (Table1.render (Table1.run ~invocations:t1_invocations ~seed ()));
  let t2_invocations = match scale with Quick -> 15 | Full -> 50 in
  progress "Table 2 (AO levels)...";
  add (Table2.render (Table2.run ~invocations:t2_invocations ~seed ()));
  progress "Table 3 (density & creation rates)...";
  let t3 =
    match scale with
    | Quick ->
        Table3.run ~budget_bytes:(Int64.of_int (Mem.Mconfig.mib 6144))
          ~rate_sample:200 ~seed ()
    | Full -> Table3.run ~seed ()
  in
  add (Table3.render t3);
  progress "Figure 4 (throughput vs set size)...";
  let fig4 =
    match scale with
    | Quick -> Fig4.run ~set_sizes:[ 64; 256; 1024; 4096 ] ~seed ()
    | Full -> Fig4.run ~seed ()
  in
  add (Fig4.render fig4);
  progress "Figure 5 (latency percentiles)...";
  let fig5 =
    match scale with
    | Quick -> Fig5.run ~set_sizes:[ 64; 2048 ] ~requests:768 ~seed ()
    | Full -> Fig5.run ~seed ()
  in
  add (Fig5.render fig5);
  let burst_periods, duration =
    match scale with
    | Quick -> ([ 16.0 ], 96.0)
    | Full -> ([ 32.0; 16.0; 8.0 ], 300.0)
  in
  List.iter
    (fun period ->
      progress "Figures 6-8 (burst every %.0f s)..." period;
      add (Fig_burst.render (Fig_burst.run ~period ~duration ~seed ())))
    burst_periods;
  progress "DR-SEUSS extension...";
  let dr_functions = match scale with Quick -> 12 | Full -> 40 in
  add (Drseuss_exp.render (Drseuss_exp.run ~functions:dr_functions ~seed ()));
  progress "Auto-AO discovery...";
  add (Auto_ao.render (Auto_ao.run ~invocations:(match scale with Quick -> 8 | Full -> 20) ~seed ()));
  progress "KSM ablation...";
  let ksm_mib = match scale with Quick -> 1536 | Full -> 4096 in
  add (Ksm_exp.render (Ksm_exp.run ~budget_mib:ksm_mib ~seed ()));
  progress "Ablations...";
  let ablation_invocations = match scale with Quick -> 10 | Full -> 30 in
  add (Ablations.render (Ablations.run ~invocations:ablation_invocations ~seed ()));
  progress "Working-set prefault (REAP)...";
  let reap_functions, reap_rounds =
    match scale with Quick -> (4, 8) | Full -> (8, 20)
  in
  add
    (Fig_reap.render
       (Fig_reap.run ~functions:reap_functions ~rounds:reap_rounds ~seed ()));
  progress "Snapshot-store eviction sweep (fig_evict)...";
  let fig_evict =
    match scale with
    | Quick ->
        Fig_evict.run ~functions:24 ~hours:0.02 ~rate:8.0
          ~sizes:
            [
              0L;
              Int64.of_int (Mem.Mconfig.mib 3);
              Int64.of_int (Mem.Mconfig.mib 64);
            ]
          ~seed ()
    | Full -> Fig_evict.run ~seed ()
  in
  add (Fig_evict.render fig_evict);
  progress "Open-loop load sweep (fig_load)...";
  let fig_load =
    match scale with
    | Quick ->
        Fig_load.run ~functions:64 ~hours:0.05 ~rps:[ 2.0; 8.0 ]
          ~arrival:"bursty" ~seed ()
    | Full -> Fig_load.run ~seed ()
  in
  add (Fig_load.render fig_load);
  Buffer.contents buf
