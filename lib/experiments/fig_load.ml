(* fig_load (extension): open-loop tail latency vs offered load.

   The closed-loop figures (4, 5) let a saturated backend slow its
   clients down; this sweep does not. For each offered rate a Zipf-
   popularity trace is synthesized over a synthetic MiniJS corpus
   ({!Workload.Trace}) and replayed open-loop — arrivals fire on
   schedule no matter how deep the backlog gets — through the same
   OpenWhisk control plane against four backends: SEUSS, the Linux
   container node, and warm-instance caches over the Firecracker and
   process backends. The figure reports client-observed latency
   percentiles per arm (plus the event-log breakdown tails and the
   cold/warm/hot serving mix), the open-loop backlog depth, and — on
   the SEUSS arm at the highest offered load — the node's resource
   timeline. Every arm of every point runs in a fresh simulation from
   the same run seed, so the whole sweep is deterministic. *)

type mix = { cold : int; warm : int; hot : int }

type arm = {
  backend : string;
  invocations : int;
  ok : int;
  errors : int;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  bd_p99_ms : float;
      (* Obs.Breakdown histogram tails (SEUSS arm only; 0 elsewhere) *)
  bd_p999_ms : float;
  achieved_rps : float;
  max_in_flight : int;
  mix : mix;
}

type point = { offered_rps : float; trace_events : int; arms : arm list }

type result = {
  functions : int;
  alpha : float;
  arrival : string;
  horizon : float;
  seed : int64;
  points : point list;
  timeline : string;
      (* resource timeline of the highest-load SEUSS arm, rendered *)
}

let backends = [ "seuss"; "linux"; "firecracker"; "process" ]

(* {1 Environment hooks}

   SEUSS_LOAD_* supply the sweep's default shape (CLI flags and explicit
   arguments override them); unset variables leave the compiled defaults
   untouched, so an unhooked run is bit-identical to one with every
   variable set to its default. *)

let hours_env_var = "SEUSS_LOAD_HOURS"
let functions_env_var = "SEUSS_LOAD_FUNCTIONS"
let rps_env_var = "SEUSS_LOAD_RPS"
let alpha_env_var = "SEUSS_LOAD_ALPHA"
let arrival_env_var = "SEUSS_LOAD_ARRIVAL"

let warn_malformed var s =
  Printf.eprintf "fig_load: ignoring malformed %s %S\n" var s

let env_float var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      match float_of_string_opt s with
      | Some v when Float.is_finite v -> v
      | _ ->
          warn_malformed var s;
          default)

let env_int var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None ->
          warn_malformed var s;
          default)

let env_string var default =
  match Sys.getenv_opt var with None -> default | Some s -> s

(* Comma-separated offered rates, e.g. SEUSS_LOAD_RPS=1,4,16. *)
let env_rps var default =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (
      let parts = String.split_on_char ',' (String.trim s) in
      let parsed = List.filter_map float_of_string_opt parts in
      match parsed with
      | _ when List.length parsed <> List.length parts || parsed = [] ->
          warn_malformed var s;
          default
      | rps -> rps)

let arrival_names = [ "poisson"; "bursty"; "diurnal" ]

let arrival_of_name name ~rate =
  match name with
  | "poisson" -> Workload.Arrival.poisson ~rate
  | "bursty" -> Workload.Arrival.bursty ~rate ()
  | "diurnal" -> Workload.Arrival.diurnal ~rate ()
  | s ->
      invalid_arg
        (Printf.sprintf "Fig_load: unknown arrival %S (expected %s)" s
           (String.concat "/" arrival_names))

(* {1 One arm} *)

let fn_action fn =
  let ms = Workload.Fnset.work_ms fn in
  if ms = 0.0 then Baselines.Backend_intf.Nop
  else Baselines.Backend_intf.Cpu_ms ms

let percentile_ms lat p =
  if Stats.Summary.count lat = 0 then 0.0
  else Stats.Summary.percentile lat p *. 1e3

(* Replay [trace] against one backend in a fresh simulation. With
   [timeline] the resource sampler runs for the whole replay (it draws
   nothing, so arming it perturbs no measured quantity) and the rendered
   timeline is returned alongside the arm. *)
let run_arm ~seed ~timeline trace backend_name =
  Harness.run_sim ~seed (fun engine ->
      let env = Harness.make_seuss_env engine in
      let bd = Obs.Breakdown.attach env.Seuss.Osenv.log in
      let controller, mix_of, timeline_node =
        match backend_name with
        | "seuss" ->
            let controller, node = Harness.seuss_controller env in
            ( controller,
              (fun () ->
                let st = Seuss.Node.stats node in
                {
                  cold = st.Seuss.Node.cold;
                  warm = st.Seuss.Node.warm;
                  hot = st.Seuss.Node.hot;
                }),
              Some node )
        | "linux" ->
            let controller, node = Harness.linux_controller env in
            ( controller,
              (fun () ->
                let st = Baselines.Linux_node.stats node in
                {
                  cold = st.Baselines.Linux_node.creates;
                  warm = st.Baselines.Linux_node.stemcell_hits;
                  hot = st.Baselines.Linux_node.warm_hits;
                }),
              None )
        | "firecracker" | "process" ->
            let kind =
              if backend_name = "firecracker" then
                Baselines.Pool_node.Firecracker
              else Baselines.Pool_node.Process
            in
            let controller, node = Harness.pool_controller ~kind env in
            ( controller,
              (fun () ->
                let st = Baselines.Pool_node.stats node in
                {
                  cold = st.Baselines.Pool_node.creates;
                  warm = 0;
                  hot = st.Baselines.Pool_node.warm_hits;
                }),
              None )
        | s -> invalid_arg (Printf.sprintf "Fig_load: unknown backend %S" s)
      in
      (match (timeline, timeline_node) with
      | true, Some node ->
          Seuss.Timeline.start
            ~period:(trace.Workload.Trace.horizon /. 256.0)
            node
      | _ -> ());
      let r =
        Workload.Replay.run
          ~invoke:(fun ~fn ->
            Platform.Controller.invoke_custom controller
              ~fn_id:(Workload.Fnset.fn_id fn) ~action:(fn_action fn)
              ~source:(Workload.Fnset.source fn))
          trace
      in
      let lat = r.Workload.Replay.latencies in
      let bd_p99_ms, bd_p999_ms =
        match Obs.Breakdown.overall_tails bd with
        | None -> (0.0, 0.0)
        | Some t ->
            (t.Obs.Breakdown.p99 *. 1e3, t.Obs.Breakdown.p999 *. 1e3)
      in
      let rendered_timeline =
        if timeline && timeline_node <> None then
          Seuss.Timeline.render
            (Seuss.Timeline.samples_of_records
               (Obs.Log.records env.Seuss.Osenv.log))
        else ""
      in
      ( {
          backend = backend_name;
          invocations = r.Workload.Replay.invocations;
          ok = r.Workload.Replay.ok;
          errors = r.Workload.Replay.errors;
          mean_ms = Stats.Summary.mean lat *. 1e3;
          p50_ms = percentile_ms lat 50.0;
          p90_ms = percentile_ms lat 90.0;
          p99_ms = percentile_ms lat 99.0;
          p999_ms = percentile_ms lat 99.9;
          bd_p99_ms;
          bd_p999_ms;
          achieved_rps = r.Workload.Replay.achieved_rps;
          max_in_flight = r.Workload.Replay.max_in_flight;
          mix = mix_of ();
        },
        rendered_timeline ))

(* {1 The sweep} *)

let default_hours = 8.0
let default_functions = 1024
let default_alpha = 1.1
let default_arrival = "diurnal"
(* The top rate is past the Firecracker arm's cold-start capacity
   (~1.3 creations/s) at the diurnal crest, so the sweep shows its
   open-loop meltdown while the other arms stay comfortably stable. *)
let default_rps = [ 0.5; 2.0; 8.0 ]

let run ?functions ?alpha ?arrival ?hours ?rps ?(seed = 11L) () =
  let functions =
    match functions with
    | Some f -> f
    | None -> env_int functions_env_var default_functions
  in
  let alpha =
    match alpha with
    | Some a -> a
    | None -> env_float alpha_env_var default_alpha
  in
  let arrival =
    match arrival with
    | Some a -> a
    | None -> env_string arrival_env_var default_arrival
  in
  let hours =
    match hours with
    | Some h -> h
    | None -> env_float hours_env_var default_hours
  in
  let rps =
    match rps with Some r -> r | None -> env_rps rps_env_var default_rps
  in
  if functions < 1 then invalid_arg "Fig_load.run: need at least one function";
  if not (Float.is_finite hours) || hours <= 0.0 then
    invalid_arg "Fig_load.run: hours must be positive";
  if rps = [] then invalid_arg "Fig_load.run: need at least one offered rate";
  List.iter
    (fun r ->
      if not (Float.is_finite r) || r <= 0.0 then
        invalid_arg "Fig_load.run: offered rates must be positive")
    rps;
  if not (List.mem arrival arrival_names) then
    ignore (arrival_of_name arrival ~rate:1.0);
  let horizon = hours *. 3600.0 in
  let top_rps = List.fold_left Float.max neg_infinity rps in
  let timeline = ref "" in
  let points =
    List.map
      (fun offered ->
        let trace =
          Workload.Trace.synthesize ~functions ~alpha
            ~arrival:(arrival_of_name arrival ~rate:offered)
            ~horizon ~seed
        in
        let arms =
          List.map
            (fun backend ->
              let want_timeline = backend = "seuss" && offered = top_rps in
              let arm, tl = run_arm ~seed ~timeline:want_timeline trace backend in
              if want_timeline then timeline := tl;
              arm)
            backends
        in
        {
          offered_rps = offered;
          trace_events = Array.length trace.Workload.Trace.events;
          arms;
        })
      rps
  in
  {
    functions;
    alpha;
    arrival;
    horizon;
    seed;
    points;
    timeline = !timeline;
  }

(* Replay an externally supplied trace (e.g. loaded from JSONL) as a
   single sweep point against every backend. *)
let run_trace ?(seed = 11L) trace =
  let arms =
    List.map (fun b -> fst (run_arm ~seed ~timeline:false trace b)) backends
  in
  {
    functions = trace.Workload.Trace.functions;
    alpha = trace.Workload.Trace.alpha;
    arrival = trace.Workload.Trace.arrival;
    horizon = trace.Workload.Trace.horizon;
    seed;
    points =
      [
        {
          offered_rps = trace.Workload.Trace.rate;
          trace_events = Array.length trace.Workload.Trace.events;
          arms;
        };
      ];
    timeline = "";
  }

(* {1 Reporting} *)

let arm_to_json a =
  Obs.Json.Obj
    [
      ("backend", Obs.Json.String a.backend);
      ("invocations", Obs.Json.Int a.invocations);
      ("ok", Obs.Json.Int a.ok);
      ("errors", Obs.Json.Int a.errors);
      ("mean_ms", Obs.Json.Float a.mean_ms);
      ("p50_ms", Obs.Json.Float a.p50_ms);
      ("p90_ms", Obs.Json.Float a.p90_ms);
      ("p99_ms", Obs.Json.Float a.p99_ms);
      ("p999_ms", Obs.Json.Float a.p999_ms);
      ("bd_p99_ms", Obs.Json.Float a.bd_p99_ms);
      ("bd_p999_ms", Obs.Json.Float a.bd_p999_ms);
      ("achieved_rps", Obs.Json.Float a.achieved_rps);
      ("max_in_flight", Obs.Json.Int a.max_in_flight);
      ("cold", Obs.Json.Int a.mix.cold);
      ("warm", Obs.Json.Int a.mix.warm);
      ("hot", Obs.Json.Int a.mix.hot);
    ]

let point_to_json p =
  Obs.Json.Obj
    [
      ("offered_rps", Obs.Json.Float p.offered_rps);
      ("trace_events", Obs.Json.Int p.trace_events);
      ("arms", Obs.Json.List (List.map arm_to_json p.arms));
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("figure", Obs.Json.String "load");
      ("functions", Obs.Json.Int r.functions);
      ("alpha", Obs.Json.Float r.alpha);
      ("arrival", Obs.Json.String r.arrival);
      ("horizon_s", Obs.Json.Float r.horizon);
      ("seed", Obs.Json.String (Int64.to_string r.seed));
      ("points", Obs.Json.List (List.map point_to_json r.points));
    ]

let render r =
  let table =
    Stats.Tablefmt.create
      ~columns:
        [
          ("rps", Stats.Tablefmt.Right);
          ("backend", Stats.Tablefmt.Left);
          ("ok", Stats.Tablefmt.Right);
          ("err", Stats.Tablefmt.Right);
          ("p50 ms", Stats.Tablefmt.Right);
          ("p90 ms", Stats.Tablefmt.Right);
          ("p99 ms", Stats.Tablefmt.Right);
          ("p999 ms", Stats.Tablefmt.Right);
          ("ach rps", Stats.Tablefmt.Right);
          ("depth", Stats.Tablefmt.Right);
          ("cold/warm/hot", Stats.Tablefmt.Right);
        ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          Stats.Tablefmt.add_row table
            [
              Printf.sprintf "%g" p.offered_rps;
              a.backend;
              string_of_int a.ok;
              string_of_int a.errors;
              Printf.sprintf "%.2f" a.p50_ms;
              Printf.sprintf "%.2f" a.p90_ms;
              Printf.sprintf "%.2f" a.p99_ms;
              Printf.sprintf "%.2f" a.p999_ms;
              Printf.sprintf "%.2f" a.achieved_rps;
              string_of_int a.max_in_flight;
              Printf.sprintf "%d/%d/%d" a.mix.cold a.mix.warm a.mix.hot;
            ])
        p.arms;
      Stats.Tablefmt.add_separator table)
    r.points;
  let curve =
    let plot =
      Stats.Asciiplot.create ~yscale:Stats.Asciiplot.Log
        ~title:"p99 latency vs offered load" ~xlabel:"offered req/s"
        ~ylabel:"p99 ms" ()
    in
    let marks = [ ("seuss", 'S'); ("linux", 'L'); ("firecracker", 'F'); ("process", 'P') ] in
    List.iter
      (fun (backend, mark) ->
        let series =
          List.filter_map
            (fun p ->
              List.find_opt (fun a -> a.backend = backend) p.arms
              |> Option.map (fun a -> (p.offered_rps, a.p99_ms)))
            r.points
        in
        Stats.Asciiplot.add_series plot ~label:backend ~mark series)
      marks;
    Stats.Asciiplot.render plot
  in
  Printf.sprintf
    "%sOpen-loop Zipf(%.2f) trace over %d functions, %s arrivals, %.1f \
     simulated hours per arm\n\
     (client-observed latency; depth = peak open-loop backlog; seed %Ld)\n\n\
     %s\n%s%s"
    (Report.heading "fig_load: tail latency vs offered load")
    r.alpha r.functions r.arrival (r.horizon /. 3600.0) r.seed
    (Stats.Tablefmt.render table)
    curve
    (if r.timeline = "" then ""
     else "\nSEUSS resource timeline at the highest offered load:\n"
          ^ r.timeline)

let write_csv ~path r =
  Report.write_csv ~path
    ~header:
      [
        "offered_rps"; "backend"; "invocations"; "ok"; "errors"; "mean_ms";
        "p50_ms"; "p90_ms"; "p99_ms"; "p999_ms"; "bd_p99_ms"; "bd_p999_ms";
        "achieved_rps"; "max_in_flight"; "cold"; "warm"; "hot";
      ]
    (List.concat_map
       (fun p ->
         List.map
           (fun a ->
             [
               Printf.sprintf "%g" p.offered_rps;
               a.backend;
               string_of_int a.invocations;
               string_of_int a.ok;
               string_of_int a.errors;
               Printf.sprintf "%.6f" a.mean_ms;
               Printf.sprintf "%.6f" a.p50_ms;
               Printf.sprintf "%.6f" a.p90_ms;
               Printf.sprintf "%.6f" a.p99_ms;
               Printf.sprintf "%.6f" a.p999_ms;
               Printf.sprintf "%.6f" a.bd_p99_ms;
               Printf.sprintf "%.6f" a.bd_p999_ms;
               Printf.sprintf "%.6f" a.achieved_rps;
               string_of_int a.max_in_flight;
               string_of_int a.mix.cold;
               string_of_int a.mix.warm;
               string_of_int a.mix.hot;
             ])
           p.arms)
       r.points)
