(** Table 1 — SEUSS microbenchmarks.

    Top half: memory footprint of the base (Node.js + invocation driver)
    snapshot and of the NOP function snapshot, before and after AO.
    Bottom half: invocation latency and memory footprint of NOP
    JavaScript functions across the cold, warm and hot paths, averaged
    over 475 invocations each (the paper's count), measured node-side —
    no control plane or shim. *)

type result = {
  base_no_ao_bytes : int64;
  base_ao_bytes : int64;
  fn_no_ao_bytes : int64;
  fn_ao_bytes : int64;
  cold : Stats.Summary.digest;
  warm : Stats.Summary.digest;
  hot : Stats.Summary.digest;
  cold_pages : float;  (** mean pages private to the UC after a cold run *)
  warm_pages : float;
  hot_pages : float;  (** mean pages newly copied during a hot run *)
  cold_phases : Obs.Breakdown.phase_means option;
      (** deploy/import/run/queue means from the event log *)
  warm_phases : Obs.Breakdown.phase_means option;
  hot_phases : Obs.Breakdown.phase_means option;
  cold_tails : Obs.Breakdown.tails option;
      (** per-path total-latency p50/p90/p99/p999, same provenance *)
  warm_tails : Obs.Breakdown.tails option;
  hot_tails : Obs.Breakdown.tails option;
}

val run : ?invocations:int -> ?seed:int64 -> unit -> result
(** Default 475 invocations per path. *)

val render : result -> string
