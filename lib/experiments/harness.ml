let default_budget = Mem.Mconfig.default_budget_bytes

(* Fault-plane hook: SEUSS_FAULT_RATE arms every injection site at the
   given rate for any harness-run experiment. The plan seed is derived
   from the run seed by a fixed xor (never split off the engine stream),
   so arming at rate 0 makes zero extra PRNG draws and leaves every
   experiment output bit-identical — the CI identity check depends on
   this. SEUSS_FAULT_SEED overrides the derived seed. *)
let fault_seed_xor = 0x5EEDFA17L

let fault_seed_of ~seed =
  match Sys.getenv_opt "SEUSS_FAULT_SEED" with
  | None -> Int64.logxor seed fault_seed_xor
  | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> v
      | None ->
          Printf.eprintf "harness: ignoring malformed SEUSS_FAULT_SEED %S\n" s;
          Int64.logxor seed fault_seed_xor)

let install_env_faults ~seed engine =
  match Faults.Fault.rates_of_env () with
  | None -> ()
  | Some rates ->
      Faults.Fault.install
        (Faults.Fault.make ~seed:(fault_seed_of ~seed) ~rates engine)

(* Sanitizer hook: SEUSS_HB=1 arms the happens-before checker before the
   experiment body spawns, so spawn edges are tracked from the root
   process down. Race reports surface as San_race events on the env log
   (see Osenv.create) and via Sim.Hb.races. Tie shuffling is separate:
   Engine.create reads SEUSS_SHUFFLE_SEED itself. *)
let hb_env_var = "SEUSS_HB"

let hb_of_env () =
  match Sys.getenv_opt hb_env_var with
  | None | Some ("0" | "false" | "no" | "off") -> false
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some s ->
      Printf.eprintf "harness: ignoring malformed %s %S\n" hb_env_var s;
      false

(* Deadlock hook: SEUSS_DEADLOCK=1 arms the engine's wait-for-graph
   detector (Engine.create reads the variable itself, like
   SEUSS_SHUFFLE_SEED). Stranded waiters surface as San_deadlock events
   on the env log (see Osenv.create) and through the two counters
   below, recorded after every run_sim — before the completion check,
   so a stuck experiment still leaves its post-mortem behind. *)
let deadlock_env_var = Sim.Engine.deadlock_env_var

let last_stuck = ref 0
let last_stranded : Sim.Engine.stranded list ref = ref []
let last_stuck_waiters () = !last_stuck
let last_stranded_waiters () = !last_stranded

(* Ownership hook: SEUSS_OWN=1 arms the engine's resource census
   (Engine.create reads the variable itself). Every harness-built node
   registers a quiescence census; leaks surface as San_leak events on
   the node log and through the accessor below. A healthy armed run
   emits nothing, so it stays byte-identical to an unarmed one — the CI
   transparency check depends on this. *)
let own_env_var = Sim.Engine.own_env_var

let last_leaked : (string * Seuss.Node.census) list ref = ref []
let last_leaked_resources () = List.rev !last_leaked

(* Distinguish the nodes of one process in census reports; leaks are
   exceptional, so the numbering never reaches healthy output. *)
let node_seq = ref 0

let run_sim ?(seed = 7L) body =
  let engine = Sim.Engine.create ~seed () in
  if hb_of_env () then ignore (Sim.Hb.enable engine);
  install_env_faults ~seed engine;
  last_leaked := [];
  let result = ref None in
  Sim.Engine.spawn engine ~name:"experiment" (fun () ->
      result := Some (body engine));
  Sim.Engine.run engine;
  last_stuck := Sim.Engine.stuck_waiters engine;
  last_stranded := Sim.Engine.stranded_waiters engine;
  match !result with
  | Some v -> v
  | None -> failwith "experiment did not complete"

let make_seuss_env ?(budget_bytes = default_budget) ?(io_delay = 0.25) engine =
  let env = Seuss.Osenv.create ~budget_bytes engine in
  let io_listener = Net.Tcp.listener ~port:80 in
  Net.Http.serve ~listener:io_listener (fun _ ->
      Sim.Engine.sleep io_delay;
      Net.Http.ok "OK");
  Seuss.Osenv.register_host env "http://io-server" io_listener;
  env

(* Prefault hook: SEUSS_PREFAULT=1 (or =0) overrides the config's
   working-set-prefault flag for any harness-built SEUSS node, the same
   way SEUSS_FAULT_RATE arms the fault plane. Unset leaves the config
   alone; =0 forces the flag off, which is also its default, so a
   SEUSS_PREFAULT=0 run is bit-identical to an unhooked one — the CI
   transparency check depends on this. *)
let prefault_env_var = "SEUSS_PREFAULT"

let prefault_of_env () =
  match Sys.getenv_opt prefault_env_var with
  | None -> None
  | Some ("1" | "true" | "yes" | "on") -> Some true
  | Some ("0" | "false" | "no" | "off") -> Some false
  | Some s ->
      Printf.eprintf "harness: ignoring malformed %s %S\n" prefault_env_var s;
      None

let apply_env_prefault config =
  match prefault_of_env () with
  | None -> config
  | Some v -> { config with Seuss.Config.prefault_working_set = v }

(* Timeline hook: SEUSS_TIMELINE=1 attaches the resource sampler to
   every harness-built SEUSS node. The sampler daemon draws nothing and
   self-terminates at quiescence, so an unarmed (or =0) run is
   bit-identical to an unhooked one — the CI transparency check depends
   on this. *)
let timeline_env_var = Seuss.Timeline.env_var

(* Snapshot-store hook: SEUSS_SNAP_CACHE=<bytes> (suffixes k/m/g,
   binary) arms the content-addressed snapshot store at that byte
   budget on every harness-built SEUSS node; SEUSS_SNAP_POLICY=lru|ws
   picks the eviction policy. Unset or =0 leaves the store disarmed —
   its default — so a SEUSS_SNAP_CACHE=0 run is bit-identical to an
   unhooked one; the CI transparency check depends on this. *)
let snap_cache_env_var = "SEUSS_SNAP_CACHE"
let snap_policy_env_var = "SEUSS_SNAP_POLICY"

let parse_bytes s =
  let s = String.trim s in
  let len = String.length s in
  if len = 0 then None
  else
    let mult, digits =
      match Char.lowercase_ascii s.[len - 1] with
      | 'k' -> (1024L, String.sub s 0 (len - 1))
      | 'm' -> (Int64.of_int (1024 * 1024), String.sub s 0 (len - 1))
      | 'g' -> (Int64.of_int (1024 * 1024 * 1024), String.sub s 0 (len - 1))
      | _ -> (1L, s)
    in
    match Int64.of_string_opt digits with
    | Some v when Int64.compare v 0L >= 0 -> Some (Int64.mul v mult)
    | _ -> None

let snap_cache_of_env () =
  match Sys.getenv_opt snap_cache_env_var with
  | None | Some "" -> None
  | Some raw -> (
      match parse_bytes raw with
      | Some v -> Some v
      | None ->
          Printf.eprintf "harness: ignoring malformed %s %S\n"
            snap_cache_env_var raw;
          None)

let snap_policy_of_env () =
  match Sys.getenv_opt snap_policy_env_var with
  | None | Some "" -> None
  | Some raw -> (
      match Seuss.Config.policy_of_name (String.lowercase_ascii raw) with
      | Some _ as p -> p
      | None ->
          Printf.eprintf "harness: ignoring malformed %s %S\n"
            snap_policy_env_var raw;
          None)

let apply_env_snap_cache config =
  let config =
    match snap_cache_of_env () with
    | None -> config
    | Some v -> { config with Seuss.Config.snapshot_cache_bytes = v }
  in
  match snap_policy_of_env () with
  | None -> config
  | Some p -> { config with Seuss.Config.snapshot_cache_policy = p }

let seuss_node ?(config = Seuss.Config.default) env =
  let node =
    Seuss.Node.create
      ~config:(apply_env_snap_cache (apply_env_prefault config))
      env
  in
  Seuss.Timeline.maybe_start_from_env node;
  let name = Printf.sprintf "node%d" !node_seq in
  incr node_seq;
  Seuss.Node.arm_census ~name
    ~on_leak:(fun c -> last_leaked := (name, c) :: !last_leaked)
    node;
  Seuss.Node.start node;
  node

let seuss_controller ?config env =
  let node = seuss_node ?config env in
  let shim = Seuss.Shim.create env node in
  (Platform.Controller.create env.Seuss.Osenv.engine
     (Platform.Controller.Seuss_backend shim),
   node)

let linux_controller ?config env =
  let node = Baselines.Linux_node.create ?config env in
  Baselines.Linux_node.start node;
  (Platform.Controller.create env.Seuss.Osenv.engine
     (Platform.Controller.Linux_backend node),
   node)

let pool_controller ?config ~kind env =
  let node = Baselines.Pool_node.create ?config ~kind env in
  (Platform.Controller.create env.Seuss.Osenv.engine
     (Platform.Controller.Pool_backend node),
   node)
