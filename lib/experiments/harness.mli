(** Common experiment plumbing: build a simulated compute node (SEUSS or
    Linux), the external IO endpoint, and the platform stack around it,
    then run a body inside the simulation. One fresh deployment per
    trial, like the paper. *)

val run_sim : ?seed:int64 -> (Sim.Engine.t -> 'a) -> 'a
(** Spawn the body as a simulation process and drive the engine until it
    completes. When {!Faults.Fault.env_var} ([SEUSS_FAULT_RATE]) is set,
    a fault plan with every site at that rate is installed on the engine
    first, seeded by [seed xor fault_seed_xor] (or [SEUSS_FAULT_SEED]):
    the derivation never draws from the engine stream, so a rate of 0
    leaves every experiment output bit-identical to an unfaulted run.
    When {!hb_env_var} ([SEUSS_HB]) is on, the happens-before schedule
    sanitizer ({!Sim.Hb}) is armed before the body spawns. The engine
    itself reads {!deadlock_env_var} ([SEUSS_DEADLOCK]) to arm the
    wait-for-graph deadlock detector; either way, after the run the
    engine's stuck-waiter count and stranded report are recorded and
    readable via {!last_stuck_waiters} / {!last_stranded_waiters}. *)

val hb_env_var : string
(** ["SEUSS_HB"]. *)

val hb_of_env : unit -> bool
(** Whether {!hb_env_var} is set to a recognised "on" value. *)

val deadlock_env_var : string
(** ["SEUSS_DEADLOCK"] — re-export of {!Sim.Engine.deadlock_env_var}. *)

val last_stuck_waiters : unit -> int
(** {!Sim.Engine.stuck_waiters} of the most recent {!run_sim} engine at
    quiescence: non-daemon processes that were still parked when the
    event queue drained. Meaningful even with the detector off; [0]
    for a clean experiment. *)

val own_env_var : string
(** ["SEUSS_OWN"] — re-export of {!Sim.Engine.own_env_var}. When on,
    every harness-built node registers an ownership census that runs at
    engine quiescence; any resource still held beyond the node's caches
    surfaces as a [San_leak] event and through
    {!last_leaked_resources}. *)

val last_leaked_resources : unit -> (string * Seuss.Node.census) list
(** Per-node nonzero censuses of the most recent {!run_sim}, in node
    creation order. Always [[]] unless [SEUSS_OWN] armed the census —
    and, on a leak-free tree, also [[]] when it did. *)

val last_stranded_waiters : unit -> Sim.Engine.stranded list
(** {!Sim.Engine.stranded_waiters} of the most recent {!run_sim} run —
    [[]] unless [SEUSS_DEADLOCK] armed the detector. *)

val fault_seed_xor : int64
(** The fixed constant mixed into the run seed to derive a fault-plan
    seed ([0x5EEDFA17]); shared by the env hook and [fig_chaos] so one
    run seed fully determines the failure sequence. *)

val install_env_faults : seed:int64 -> Sim.Engine.t -> unit
(** The [SEUSS_FAULT_RATE] hook described at {!run_sim}, for harnesses
    that build their own engine. *)

val make_seuss_env :
  ?budget_bytes:int64 -> ?io_delay:float -> Sim.Engine.t -> Seuss.Osenv.t
(** An 88 GB/16-core environment with the external blocking HTTP
    endpoint registered as ["http://io-server"]. *)

val prefault_env_var : string
(** ["SEUSS_PREFAULT"]. *)

val prefault_of_env : unit -> bool option
(** [Some true] / [Some false] when {!prefault_env_var} is set to a
    recognised on/off value; [None] when unset or malformed. *)

val apply_env_prefault : Seuss.Config.t -> Seuss.Config.t
(** Override [prefault_working_set] from the environment (applied by
    {!seuss_node} to every harness-built node). [SEUSS_PREFAULT=0] is
    indistinguishable from unset because the flag defaults to off. *)

val timeline_env_var : string
(** ["SEUSS_TIMELINE"] — re-export of [Seuss.Timeline.env_var]. When
    on, {!seuss_node} attaches the resource timeline sampler to the
    node; unset/off runs are bit-identical to unhooked ones. *)

val snap_cache_env_var : string
(** ["SEUSS_SNAP_CACHE"] — byte budget of the content-addressed
    snapshot store for every harness-built SEUSS node. Plain bytes or
    binary suffixes [k]/[m]/[g] (e.g. ["64m"]). Unset or [0] leaves the
    store disarmed (the default), so a [SEUSS_SNAP_CACHE=0] run is
    bit-identical to an unhooked one. *)

val snap_policy_env_var : string
(** ["SEUSS_SNAP_POLICY"] — ["lru"] or ["ws"]; only meaningful while
    {!snap_cache_env_var} arms the store. *)

val parse_bytes : string -> int64 option
(** Parse a byte count in the {!snap_cache_env_var} syntax: plain bytes
    or binary [k]/[m]/[g] suffixes, non-negative. [None] on malformed
    input (no warning — callers own their diagnostics). *)

val snap_cache_of_env : unit -> int64 option
(** Parsed {!snap_cache_env_var}; [None] when unset, empty or malformed
    (malformed warns on stderr). *)

val snap_policy_of_env : unit -> Seuss.Config.snap_policy option

val apply_env_snap_cache : Seuss.Config.t -> Seuss.Config.t
(** Override [snapshot_cache_bytes] / [snapshot_cache_policy] from the
    environment (applied by {!seuss_node} to every harness-built
    node). *)

val seuss_node :
  ?config:Seuss.Config.t -> Seuss.Osenv.t -> Seuss.Node.t
(** Create and start a SEUSS node (blocking: boots the runtime). The
    config's prefault flag is subject to the [SEUSS_PREFAULT] override
    and the node to the [SEUSS_TIMELINE] sampler hook (the node itself
    reads [SEUSS_TRACE_SAMPLE]); experiments needing fixed arms
    (e.g. [Fig_reap]) build their nodes directly. *)

val seuss_controller :
  ?config:Seuss.Config.t -> Seuss.Osenv.t -> Platform.Controller.t * Seuss.Node.t
(** Node + shim + OpenWhisk controller. *)

val linux_controller :
  ?config:Baselines.Linux_node.config ->
  Seuss.Osenv.t ->
  Platform.Controller.t * Baselines.Linux_node.t

val pool_controller :
  ?config:Baselines.Pool_node.config ->
  kind:Baselines.Pool_node.kind ->
  Seuss.Osenv.t ->
  Platform.Controller.t * Baselines.Pool_node.t
(** Warm-instance-cache node over the Firecracker or Process backend
    behind the same OpenWhisk control plane — the microVM and process
    arms of the load experiments. *)

val default_budget : int64
(** 88 GiB — the paper's compute node VM. *)
