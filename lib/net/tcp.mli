(** Point-to-point reliable byte-stream connections.

    A deliberately small TCP model: connections carry framed messages
    with costs derived from a {!Netconf.link} (handshake = 1.5 RTT,
    per-message cost = serialization + fixed overhead, delivery delayed
    by the one-way latency). Organic loss is not modeled here —
    admission failure and drop-induced timeouts live in {!Bridge}, where
    the paper observed them — but the fault plane can inject loss at two
    sites: [Net_drop] loses a SYN (consuming one retry of the budget
    below), and [Net_delay] stalls a {!send} by the plan's delay spike.
    Both are no-ops when no {!Faults.Fault.plan} is installed. *)

type msg = { data : string; size : int }
(** [size] is the modeled wire size; it may exceed [String.length data]
    (e.g. a 1 MB body carried as a short tag). *)

type conn
(** One endpoint's view of an established connection. *)

type listener

val listener : port:int -> listener

val port : listener -> int

val connect : ?admit:(unit -> bool) -> link:Netconf.link -> listener -> conn option
(** Establish a connection from within a simulation process: sleeps the
    handshake, then queues the peer endpoint on the listener's accept
    queue. [admit] (default always-true) is consulted once per SYN; on
    refusal the caller sleeps a retransmission timeout and retries, and
    after the retry budget the connect fails with [None] — the behaviour
    behind the paper's container connection timeouts. *)

val accept : listener -> conn
(** Blocks until a peer connects. *)

val accept_timeout : listener -> timeout:float -> conn option

val send : conn -> ?size:int -> string -> unit
(** Blocks the sender for serialization + overhead; the peer receives the
    message one latency later. [size] defaults to the string length.
    @raise Invalid_argument if the connection is closed. *)

val recv : conn -> msg option
(** Blocks until a message or the peer's close arrives; [None] on close. *)

val recv_timeout : conn -> timeout:float -> msg option option
(** [Some (Some m)] message, [Some None] peer closed, [None] timed out. *)

val close : conn -> unit
(** Idempotent; wakes the peer's pending [recv] with end-of-stream. *)

val is_closed : conn -> bool

val syn_timeout : float
(** Retransmission pause after a refused SYN (1 s, Linux-like initial
    SYN retry). *)

val syn_retries : int
(** Refused/dropped SYNs tolerated after the first attempt (2): a
    connect makes at most [1 + syn_retries] attempts before giving up —
    the retry budget the Figures 6-8 'x' marks and the fault-plane drop
    tests assert against. *)
