type msg = { data : string; size : int }

type frame = Data of msg | Fin

(* One direction of a connection. Frames are stamped with a sequence
   number in sender program order and re-ordered on the receiving side,
   so delivery order matches send order even when several frames land at
   the same simulated instant and the engine's tie shuffler permutes
   their events — real TCP is FIFO per direction, and the schedule
   sanitizer holds the model to that. *)
type dir = {
  ch : (int * frame) Sim.Channel.t;
  mutable tx_seq : int;  (* next sequence number to assign (sender side) *)
  mutable rx_seq : int;  (* next sequence number to deliver (receiver side) *)
  mutable ooo : (int * frame) list;  (* out-of-order frames, buffered *)
}

let make_dir () = { ch = Sim.Channel.create (); tx_seq = 0; rx_seq = 0; ooo = [] }

type conn = {
  out : dir;
  inc : dir;
  link : Netconf.link;
  mutable closed_local : bool;
  mutable closed_remote : bool;
}

type listener = { port : int; accepts : conn Sim.Channel.t }

let listener ~port = { port; accepts = Sim.Channel.create () }

let port l = l.port

let syn_timeout = 1.0
let syn_retries = 2

let connect ?(admit = fun () -> true) ~link l =
  let engine = Sim.Engine.self () in
  (* Fault plane: an injected drop loses this SYN exactly like an
     admission refusal — the client sleeps the retransmission timeout and
     spends one attempt of its retry budget. *)
  let admit () = admit () && not (Faults.Fault.fire Net_drop ~detail:"syn") in
  let rec attempt tries =
    if admit () then begin
      (* Handshake: SYN, SYN/ACK, ACK before data can flow. *)
      Sim.Engine.sleep (3.0 *. link.Netconf.latency);
      let a2b = make_dir () and b2a = make_dir () in
      let client =
        { out = a2b; inc = b2a; link; closed_local = false; closed_remote = false }
      in
      let server =
        { out = b2a; inc = a2b; link; closed_local = false; closed_remote = false }
      in
      Sim.Engine.schedule engine ~delay:link.Netconf.latency (fun () ->
          Sim.Channel.send l.accepts server);
      Some client
    end
    else if tries >= syn_retries then None
    else begin
      Sim.Engine.sleep syn_timeout;
      attempt (tries + 1)
    end
  in
  attempt 0

let accept l = Sim.Channel.recv l.accepts

let accept_timeout l ~timeout = Sim.Channel.recv_timeout l.accepts ~timeout

(* Put a frame on the wire: claim the next sequence number now (sender
   program order), deliver one link latency later. *)
let transmit dir ~latency frame =
  let seq = dir.tx_seq in
  dir.tx_seq <- seq + 1;
  match Sim.Engine.self () with
  | engine ->
      Sim.Engine.schedule engine ~delay:latency (fun () ->
          Sim.Channel.send dir.ch (seq, frame))
  | exception Invalid_argument _ ->
      (* Outside a run (cleanup after the simulation ended). *)
      Sim.Channel.send dir.ch (seq, frame)

(* Next frame in sequence order, buffering any that arrive early.
   [deadline] is an absolute sim time; [None] means block forever. *)
let rec next_frame dir ~deadline =
  match List.assoc_opt dir.rx_seq dir.ooo with
  | Some frame ->
      dir.ooo <- List.remove_assoc dir.rx_seq dir.ooo;
      dir.rx_seq <- dir.rx_seq + 1;
      Some frame
  | None -> (
      let arrived =
        match deadline with
        | None -> Some (Sim.Channel.recv dir.ch)
        | Some d ->
            let remaining = d -. Sim.Engine.now (Sim.Engine.self ()) in
            if remaining < 0.0 then None
            else Sim.Channel.recv_timeout dir.ch ~timeout:remaining
      in
      match arrived with
      | None -> None
      | Some (seq, frame) ->
          if seq = dir.rx_seq then begin
            dir.rx_seq <- dir.rx_seq + 1;
            Some frame
          end
          else begin
            dir.ooo <- (seq, frame) :: dir.ooo;
            next_frame dir ~deadline
          end)

let send conn ?size data =
  if conn.closed_local then invalid_arg "Tcp.send: connection closed";
  let size = Option.value size ~default:(String.length data) in
  let link = conn.link in
  (* Fault plane: a delay spike stalls the sender (head-of-line blocking
     on a congested path); 0.0 whenever no plan is armed. *)
  Sim.Engine.sleep
    (link.Netconf.per_message
    +. (float_of_int size /. link.Netconf.bandwidth)
    +. Faults.Fault.delay ());
  transmit conn.out ~latency:link.Netconf.latency (Data { data; size })

let interpret conn = function
  | Some (Data m) -> Some m
  | Some Fin ->
      conn.closed_remote <- true;
      None
  | None ->
      (* Channels never yield None without timeout; treated as close. *)
      conn.closed_remote <- true;
      None

let recv conn =
  if conn.closed_remote then None
  else interpret conn (next_frame conn.inc ~deadline:None)

let recv_timeout conn ~timeout =
  if conn.closed_remote then Some None
  else
    let deadline = Sim.Engine.now (Sim.Engine.self ()) +. timeout in
    match next_frame conn.inc ~deadline:(Some deadline) with
    | None -> None
    | Some frame -> Some (interpret conn (Some frame))

let close conn =
  if not conn.closed_local then begin
    conn.closed_local <- true;
    transmit conn.out ~latency:conn.link.Netconf.latency Fin
  end

let is_closed conn = conn.closed_local || conn.closed_remote
