type msg = { data : string; size : int }

type frame = Data of msg | Fin

type conn = {
  out : frame Sim.Channel.t;
  inc : frame Sim.Channel.t;
  link : Netconf.link;
  mutable closed_local : bool;
  mutable closed_remote : bool;
}

type listener = { port : int; accepts : conn Sim.Channel.t }

let listener ~port = { port; accepts = Sim.Channel.create () }

let port l = l.port

let syn_timeout = 1.0
let syn_retries = 2

let connect ?(admit = fun () -> true) ~link l =
  let engine = Sim.Engine.self () in
  (* Fault plane: an injected drop loses this SYN exactly like an
     admission refusal — the client sleeps the retransmission timeout and
     spends one attempt of its retry budget. *)
  let admit () = admit () && not (Faults.Fault.fire Net_drop ~detail:"syn") in
  let rec attempt tries =
    if admit () then begin
      (* Handshake: SYN, SYN/ACK, ACK before data can flow. *)
      Sim.Engine.sleep (3.0 *. link.Netconf.latency);
      let a2b = Sim.Channel.create () and b2a = Sim.Channel.create () in
      let client =
        { out = a2b; inc = b2a; link; closed_local = false; closed_remote = false }
      in
      let server =
        { out = b2a; inc = a2b; link; closed_local = false; closed_remote = false }
      in
      Sim.Engine.schedule engine ~delay:link.Netconf.latency (fun () ->
          Sim.Channel.send l.accepts server);
      Some client
    end
    else if tries >= syn_retries then None
    else begin
      Sim.Engine.sleep syn_timeout;
      attempt (tries + 1)
    end
  in
  attempt 0

let accept l = Sim.Channel.recv l.accepts

let accept_timeout l ~timeout = Sim.Channel.recv_timeout l.accepts ~timeout

let send conn ?size data =
  if conn.closed_local then invalid_arg "Tcp.send: connection closed";
  let size = Option.value size ~default:(String.length data) in
  let link = conn.link in
  (* Fault plane: a delay spike stalls the sender (head-of-line blocking
     on a congested path); 0.0 whenever no plan is armed. *)
  Sim.Engine.sleep
    (link.Netconf.per_message
    +. (float_of_int size /. link.Netconf.bandwidth)
    +. Faults.Fault.delay ());
  let engine = Sim.Engine.self () in
  Sim.Engine.schedule engine ~delay:link.Netconf.latency (fun () ->
      Sim.Channel.send conn.out (Data { data; size }))

let interpret conn = function
  | Some (Data m) -> Some m
  | Some Fin ->
      conn.closed_remote <- true;
      None
  | None ->
      (* Channels never yield None without timeout; treated as close. *)
      conn.closed_remote <- true;
      None

let recv conn =
  if conn.closed_remote then None
  else interpret conn (Some (Sim.Channel.recv conn.inc))

let recv_timeout conn ~timeout =
  if conn.closed_remote then Some None
  else
    match Sim.Channel.recv_timeout conn.inc ~timeout with
    | None -> None
    | Some frame -> Some (interpret conn (Some frame))

let close conn =
  if not conn.closed_local then begin
    conn.closed_local <- true;
    match Sim.Engine.self () with
    | engine ->
        Sim.Engine.schedule engine ~delay:conn.link.Netconf.latency (fun () ->
            Sim.Channel.send conn.out Fin)
    | exception Invalid_argument _ ->
        (* Closing outside a run (cleanup after the simulation ended). *)
        Sim.Channel.send conn.out Fin
  end

let is_closed conn = conn.closed_local || conn.closed_remote
