type request = { path : string; body : string; body_size : int }

type response = { status : int; body : string; body_size : int }

let ok ?body_size body =
  { status = 200; body; body_size = Option.value body_size ~default:(String.length body) }

let error status body = { status; body; body_size = String.length body }

(* Wire framing: a one-line header then the body, carried in a single
   Tcp message whose modeled [size] includes the body size. *)

let encode_request r = Printf.sprintf "REQ %s\n%s" r.path r.body

let encode_response r = Printf.sprintf "RES %d\n%s" r.status r.body

let split_header s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let decode_request m =
  let header, body = split_header m.Tcp.data in
  let path =
    if String.length header > 4 then String.sub header 4 (String.length header - 4)
    else ""
  in
  { path; body; body_size = m.Tcp.size }

let decode_response m =
  let header, body = split_header m.Tcp.data in
  let status =
    match String.split_on_char ' ' header with
    | [ "RES"; code ] -> ( match int_of_string_opt code with Some c -> c | None -> 500)
    | _ -> 500
  in
  { status; body; body_size = m.Tcp.size }

let request ~conn ?timeout ?body_size ~path body =
  let wire = encode_request { path; body; body_size = 0 } in
  let size =
    Option.value body_size ~default:(String.length body) + String.length path + 64
  in
  Tcp.send conn ~size wire;
  let reply =
    match timeout with
    | None -> Some (Tcp.recv conn)
    | Some timeout -> Tcp.recv_timeout conn ~timeout
  in
  match reply with
  | None -> Error `Timeout
  | Some None -> Error `Closed
  | Some (Some m) -> Ok (decode_response m)

let serve ~listener handler =
  let engine = Sim.Engine.self () in
  (* The accept loop parks forever once traffic stops — a daemon by
     design, not a stranded waiter. *)
  Sim.Engine.spawn engine ~name:"http-accept" ~daemon:true (fun () ->
      let rec accept_loop () =
        let conn = Tcp.accept listener in
        Sim.Engine.spawn engine ~name:"http-conn" (fun () ->
            let rec serve_loop () =
              match Tcp.recv conn with
              | None -> ()
              | Some m ->
                  let resp = handler (decode_request m) in
                  let size = resp.body_size + 64 in
                  if not (Tcp.is_closed conn) then begin
                    Tcp.send conn ~size (encode_response resp);
                    serve_loop ()
                  end
            in
            serve_loop ());
        accept_loop ()
      in
      accept_loop ())

let get ~link ?admit ?timeout listener ~path =
  match Tcp.connect ?admit ~link listener with
  | None -> Error `Refused
  | Some conn -> (
      let result = request ~conn ?timeout ~path "" in
      Tcp.close conn;
      match result with
      | Ok r -> Ok r
      | Error `Timeout -> Error `Timeout
      | Error `Closed -> Error `Closed)
