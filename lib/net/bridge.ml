type config = {
  safe_endpoints : int;
  broadcast_cost : float;
  drop_base : float;
}

let default_config =
  { safe_endpoints = 1024; broadcast_cost = 1.2e-6; drop_base = 0.04 }

type t = {
  cfg : config;
  rng : Sim.Prng.t;
  kernel : Sim.Semaphore.t;  (* serialized bridge broadcast processing *)
  mutable n_endpoints : int;
  mutable inflight_connects : int;
  mutable dropped : int;
  mutable failed : int;
}

let create ?(config = default_config) ~rng () =
  {
    cfg = config;
    rng;
    kernel = Sim.Semaphore.create 1; (* seussdead: lock bridge.kernel *)
    n_endpoints = 0;
    inflight_connects = 0;
    dropped = 0;
    failed = 0;
  }

let config t = t.cfg

let add_endpoint t =
  (* The new endpoint announces itself (ARP/DHCP); every broadcast is
     processed once per attached endpoint, under the bridge lock. *)
  Sim.Semaphore.with_permit t.kernel (fun () ->
      Sim.Engine.sleep
        (t.cfg.broadcast_cost *. float_of_int (t.n_endpoints + 1)));
  t.n_endpoints <- t.n_endpoints + 1

let remove_endpoint t =
  if t.n_endpoints <= 0 then invalid_arg "Bridge.remove_endpoint: none attached";
  t.n_endpoints <- t.n_endpoints - 1

let endpoints t = t.n_endpoints

let drop_probability t =
  let load = float_of_int t.n_endpoints /. float_of_int t.cfg.safe_endpoints in
  let concurrency = 1.0 +. (float_of_int t.inflight_connects /. 8.0) in
  Float.min 0.9 (t.cfg.drop_base *. load *. load *. concurrency)

let connect t listener =
  t.inflight_connects <- t.inflight_connects + 1;
  let admit () =
    let p = drop_probability t in
    let ok = Sim.Prng.float t.rng >= p in
    if not ok then t.dropped <- t.dropped + 1;
    ok
  in
  let result = Tcp.connect ~admit ~link:Netconf.loopback listener in
  t.inflight_connects <- t.inflight_connects - 1;
  if Option.is_none result then t.failed <- t.failed + 1;
  result

let dropped_syns t = t.dropped

let failed_connects t = t.failed
